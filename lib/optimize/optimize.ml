(** The count-preserving UCQ cover optimizer.  See the interface for the
    soundness argument; the implementation notes here cover the partial-
    knowledge subtlety.

    The containment matrix [hom.(i).(j)] holds a {e witness}
    homomorphism [A_i → A_j] fixing the free variables pointwise when
    one is known ([ans_j ⊆ ans_i]), and [None] when none is known —
    which, under a budget, conflates "searched and absent" with "search
    exhausted".  A drop rule that compares [hom.(i).(j)] against
    [hom.(j).(i)] symmetrically (as the analyzer's UCQ104/UCQ106
    reporting does) is unsound on such a partial matrix: a mutual-
    equivalence class whose reverse searches all exhausted could be
    dropped entirely.  The greedy sequential cover below never does
    that: processing [j] in order, [Ψ_j] is dropped only when

    - an already-{e kept} disjunct [k] subsumes it ([hom.(k).(j)]
      known), or
    - a strictly later disjunct [l > j] one-way subsumes it
      ([hom.(l).(j)] known, [hom.(j).(l)] unknown).

    Every drop is justified by a true containment into a disjunct that
    is either kept or justified by a strictly later one, so the chains
    terminate at a kept disjunct and the union of kept answer sets is
    unchanged.  On a complete matrix this drops exactly the disjuncts
    the analyzer warns about. *)

type rewrite =
  | Drop_subsumed of { index : int; by : int; map : (int * int) list }
  | Drop_duplicate of { index : int; by : int; map : (int * int) list }
  | Minimize of {
      index : int;
      atoms_before : int;
      atoms_after : int;
      vars_before : int;
      vars_after : int;
    }

type report = {
  original : Ucq.t;
  optimized : Ucq.t;
  rewrites : rewrite list;
  kept : int list;
  changed : bool;
  complete : bool;
}

let default_max_steps = 200_000

(* [Cq.sharp_core] is unbudgeted and exponential in the universe size;
   query-sized disjuncts pass easily, adversarial input is skipped. *)
let core_gate = 12

let c_runs = Telemetry.counter "optimize.runs"
let c_disjuncts_removed = Telemetry.counter "optimize.disjuncts_removed"
let c_atoms_removed = Telemetry.counter "optimize.atoms_removed"
let c_witness_verified = Telemetry.counter "optimize.witness_verified"

let identity (psi : Ucq.t) : report =
  {
    original = psi;
    optimized = psi;
    rewrites = [];
    kept = List.init (Ucq.length psi) Fun.id;
    changed = false;
    complete = false;
  }

let run ?(budget : Budget.t option) ?(hints : Diagnostic.t list = [])
    (psi : Ucq.t) : report =
  Telemetry.incr c_runs;
  let budget =
    match budget with
    | Some b -> b
    | None -> Budget.of_steps default_max_steps
  in
  try
    let ds = Array.of_list (Ucq.disjunct_structures psi) in
    let n = Array.length ds in
    let fixed = List.map (fun v -> (v, v)) (Ucq.free psi) in
    let complete = ref true in
    (* hom.(i).(j): a known homomorphism A_i -> A_j fixing X *)
    let hom = Array.make_matrix n n None in
    (* Seed from analyzer witnesses: O(tuples) re-verification replaces
       a fresh exponential search.  Unverifiable hints are ignored. *)
    List.iter
      (fun (d : Diagnostic.t) ->
        match d.Diagnostic.witness with
        | Some (Diagnostic.Hom_witness { source = i; target = j; map })
          when i >= 0 && i < n && j >= 0 && j < n && i <> j
               && hom.(i).(j) = None ->
            if Hom.verify ~fixed ds.(i) ds.(j) map then begin
              hom.(i).(j) <- Some map;
              Telemetry.incr c_witness_verified
            end
        | _ -> ())
      hints;
    (* Fill the remaining pairs by budgeted search; exhaustion leaves
       them unknown and the report incomplete. *)
    (try
       for i = 0 to n - 1 do
         for j = 0 to n - 1 do
           if i <> j && hom.(i).(j) = None then
             Hom.iter_homs ~budget ~fixed ds.(i) ds.(j) (fun h ->
                 hom.(i).(j) <- Some h;
                 false)
         done
       done
     with Budget.Exhausted _ -> complete := false);
    (* Greedy sequential cover (see the module comment). *)
    let kept = ref [] (* ascending via final reversal *) in
    let drops = ref [] in
    for j = 0 to n - 1 do
      match List.find_opt (fun k -> hom.(k).(j) <> None) (List.rev !kept) with
      | Some k ->
          let map = Option.get hom.(k).(j) in
          drops :=
            (if hom.(j).(k) <> None then
               Drop_duplicate { index = j; by = k; map }
             else Drop_subsumed { index = j; by = k; map })
            :: !drops
      | None -> (
          let rec later l =
            if l >= n then None
            else if hom.(l).(j) <> None && hom.(j).(l) = None then Some l
            else later (l + 1)
          in
          match later (j + 1) with
          | Some l ->
              drops :=
                Drop_subsumed { index = j; by = l; map = Option.get hom.(l).(j) }
                :: !drops
          | None -> kept := j :: !kept)
    done;
    let kept = List.rev !kept in
    (* Minimize each survivor to its #core; the retraction fixes the
       free variables pointwise, so the disjunct's answer set is
       unchanged (Definition 19 / Observation 17). *)
    let mins = ref [] in
    let minimized =
      List.map
        (fun j ->
          let q = Ucq.disjunct psi j in
          let a = Cq.structure q in
          if Structure.universe_size a > core_gate then begin
            complete := false;
            q
          end
          else
            let core = Cq.sharp_core q in
            let ca = Cq.structure core in
            let atoms_before = Structure.num_tuples a
            and atoms_after = Structure.num_tuples ca
            and vars_before = Structure.universe_size a
            and vars_after = Structure.universe_size ca in
            if atoms_after < atoms_before || vars_after < vars_before then begin
              mins :=
                Minimize
                  { index = j; atoms_before; atoms_after; vars_before;
                    vars_after }
                :: !mins;
              core
            end
            else q)
        kept
    in
    let rewrites = List.rev !drops @ List.rev !mins in
    let report =
      if rewrites = [] then
        { original = psi; optimized = psi; rewrites = []; kept;
          changed = false; complete = !complete }
      else
        { original = psi; optimized = Ucq.make minimized; rewrites; kept;
          changed = true; complete = !complete }
    in
    Telemetry.add c_disjuncts_removed (n - List.length kept);
    Telemetry.add c_atoms_removed
      (max 0 (Ucq.num_atoms psi - Ucq.num_atoms report.optimized));
    report
  with _ ->
    (* total by contract: any escape degrades to the identity rewrite *)
    identity psi

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let disjuncts_removed (r : report) : int =
  Ucq.length r.original - Ucq.length r.optimized

let atoms_removed (r : report) : int =
  Ucq.num_atoms r.original - Ucq.num_atoms r.optimized

let subsets (l : int) : int = if l < 62 then (1 lsl l) - 1 else max_int

let expansion_subsets (r : report) : int * int =
  (subsets (Ucq.length r.original), subsets (Ucq.length r.optimized))

let support_shrink ?(budget : Budget.t option) ?(pool : Pool.t option)
    (r : report) : (int * int) option =
  let budget =
    match budget with
    | Some b -> b
    | None -> Budget.of_steps default_max_steps
  in
  match
    let before = List.length (Ucq.support ~budget ?pool r.original) in
    let after =
      if r.changed then List.length (Ucq.support ~budget ?pool r.optimized)
      else before
    in
    (before, after)
  with
  | v -> Some v
  | exception Budget.Exhausted _ -> None

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let describe_rewrite : rewrite -> string = function
  | Drop_subsumed { index; by; _ } ->
      Printf.sprintf
        "drop disjunct %d: subsumed by disjunct %d (verified homomorphism \
         fixing the free variables)"
        (index + 1) (by + 1)
  | Drop_duplicate { index; by; _ } ->
      Printf.sprintf
        "drop disjunct %d: homomorphically equivalent to disjunct %d"
        (index + 1) (by + 1)
  | Minimize { index; atoms_before; atoms_after; vars_before; vars_after } ->
      Printf.sprintf
        "minimize disjunct %d to its #core: %d -> %d atoms, %d -> %d \
         variables"
        (index + 1) atoms_before atoms_after vars_before vars_after

let describe (r : report) : string =
  let sb, sa = expansion_subsets r in
  let header =
    if not r.changed then
      Printf.sprintf "no rewrite applies (%d disjuncts, %d atoms)%s"
        (Ucq.length r.original)
        (Ucq.num_atoms r.original)
        (if r.complete then "" else " [analysis incomplete: budget]")
    else
      Printf.sprintf
        "rewrote %d -> %d disjuncts, %d -> %d atoms, %d -> %d IE subsets%s"
        (Ucq.length r.original)
        (Ucq.length r.optimized)
        (Ucq.num_atoms r.original)
        (Ucq.num_atoms r.optimized)
        sb sa
        (if r.complete then "" else " [analysis incomplete: budget]")
  in
  String.concat "\n" (header :: List.map describe_rewrite r.rewrites)

let diagnostics ?(env : Parse.query_env option)
    ?(span : Diagnostic.span option) (r : report) : Diagnostic.t list =
  let of_rewrite = function
    | Drop_subsumed { index; by; map } ->
        Diagnostic.make ?span
          ~witness:
            (Diagnostic.Hom_witness { source = by; target = index; map })
          "UCQ401"
          "dropped disjunct %d: subsumed by disjunct %d (verified witness \
           homomorphism)"
          (index + 1) (by + 1)
    | Drop_duplicate { index; by; map } ->
        Diagnostic.make ?span
          ~witness:
            (Diagnostic.Hom_witness { source = by; target = index; map })
          "UCQ402"
          "dropped disjunct %d: homomorphically equivalent to disjunct %d"
          (index + 1) (by + 1)
    | Minimize { index; atoms_before; atoms_after; vars_before; vars_after }
      ->
        Diagnostic.make ?span "UCQ403"
          "minimized disjunct %d to its #core: %d -> %d atoms, %d -> %d \
           variables"
          (index + 1) atoms_before atoms_after vars_before vars_after
  in
  let ds = List.map of_rewrite r.rewrites in
  if not r.changed then ds
  else
    let fix =
      Option.map
        (fun at ->
          {
            Diagnostic.description =
              "apply the count-preserving rewrite (cover + #core \
               minimization)";
            replacements =
              [ { Diagnostic.at; text = Pretty.ucq ?env r.optimized } ];
          })
        span
    in
    ds
    @ [
        Diagnostic.make ?span ?fix "UCQ404"
          "query rewritten: %d -> %d disjuncts, %d -> %d atoms \
           (count-preserving; answer set unchanged)"
          (Ucq.length r.original)
          (Ucq.length r.optimized)
          (Ucq.num_atoms r.original)
          (Ucq.num_atoms r.optimized);
      ]

let rewrite_to_json (rw : rewrite) : Trace_json.t =
  let num i = Trace_json.Num (float_of_int i) in
  match rw with
  | Drop_subsumed { index; by; _ } ->
      Trace_json.Obj
        [
          ("kind", Trace_json.Str "drop_subsumed");
          ("index", num index);
          ("by", num by);
        ]
  | Drop_duplicate { index; by; _ } ->
      Trace_json.Obj
        [
          ("kind", Trace_json.Str "drop_duplicate");
          ("index", num index);
          ("by", num by);
        ]
  | Minimize { index; atoms_before; atoms_after; vars_before; vars_after } ->
      Trace_json.Obj
        [
          ("kind", Trace_json.Str "minimize");
          ("index", num index);
          ("atomsBefore", num atoms_before);
          ("atomsAfter", num atoms_after);
          ("varsBefore", num vars_before);
          ("varsAfter", num vars_after);
        ]

let report_to_json ?(env : Parse.query_env option) (r : report) :
    Trace_json.t =
  let num i = Trace_json.Num (float_of_int i) in
  let sb, sa = expansion_subsets r in
  Trace_json.Obj
    [
      ("original", Trace_json.Str (Pretty.ucq ?env r.original));
      ("optimized", Trace_json.Str (Pretty.ucq ?env r.optimized));
      ("changed", Trace_json.Bool r.changed);
      ("complete", Trace_json.Bool r.complete);
      ("disjunctsBefore", num (Ucq.length r.original));
      ("disjunctsAfter", num (Ucq.length r.optimized));
      ("atomsBefore", num (Ucq.num_atoms r.original));
      ("atomsAfter", num (Ucq.num_atoms r.optimized));
      ("subsetsBefore", num sb);
      ("subsetsAfter", num sa);
      ("kept", Trace_json.Arr (List.map num r.kept));
      ("rewrites", Trace_json.Arr (List.map rewrite_to_json r.rewrites));
    ]
