(** The count-preserving UCQ cover optimizer (ROADMAP item 3).

    {!run} rewrites a union [Ψ = Ψ_1 ∨ … ∨ Ψ_ℓ] into an
    answer-equivalent union with fewer disjuncts and smaller disjuncts:

    - {b Cover computation} — a disjunct [Ψ_j] is dropped when a kept
      disjunct [Ψ_k] admits a homomorphism [A_k → A_j] fixing the free
      variables pointwise: every answer of [Ψ_j] is then an answer of
      [Ψ_k] (the UCQ104/UCQ106 analysis facts, promoted to rewrites).
      Shrinking ℓ attacks the [2^ℓ] inclusion–exclusion/expansion blowup
      directly, and collapses the #equivalence classes of expansion
      terms the Lemma 26 coefficient path would otherwise cancel at
      [2^ℓ] cost.
    - {b Per-disjunct minimization} — each survivor is replaced by its
      #core ({!Cq.sharp_core}, Definition 19): the retraction fixes the
      free variables pointwise, so the answer {e set} of the disjunct is
      unchanged.

    Soundness under partial knowledge: the homomorphism facts are
    gathered under a budget, so the matrix may have false negatives
    (exhausted searches).  The cover is therefore computed by a greedy
    sequential rule — drop [Ψ_j] only when a {e kept} earlier disjunct
    subsumes it, or a strictly later disjunct one-way subsumes it —
    whose justification chains always terminate at a kept disjunct.
    Missing facts can only make the optimizer keep more disjuncts,
    never drop a wrong one.

    {!run} is total and deterministic: it never raises, and for a fixed
    query, budget, and hint list it returns the identical report. *)

type rewrite =
  | Drop_subsumed of { index : int; by : int; map : (int * int) list }
      (** disjunct [index] dropped: [map] is a verified homomorphism
          [A_by → A_index] fixing the free variables (ans_index ⊆
          ans_by), with no known reverse homomorphism *)
  | Drop_duplicate of { index : int; by : int; map : (int * int) list }
      (** like {!Drop_subsumed} but homomorphically equivalent: a
          reverse homomorphism [A_index → A_by] is also known *)
  | Minimize of {
      index : int;
      atoms_before : int;
      atoms_after : int;
      vars_before : int;
      vars_after : int;
    }  (** disjunct [index] replaced by its strictly smaller #core *)

type report = {
  original : Ucq.t;
  optimized : Ucq.t;  (** physically [original] when [not changed] *)
  rewrites : rewrite list;
      (** drops in disjunct order, then minimizations in disjunct
          order; indices refer to the {e original} disjunct positions *)
  kept : int list;  (** original indices of the surviving disjuncts *)
  changed : bool;
  complete : bool;
      (** [false] when the budget exhausted a containment search or the
          #core gate skipped a large disjunct — some rewrites may have
          been missed (never wrongly applied) *)
}

(** The private step allowance when {!run} is called without a budget —
    optimization must terminate on adversarial input regardless. *)
val default_max_steps : int

(** Universe-size gate above which {!Cq.sharp_core} (unbudgeted,
    exponential) is not attempted. *)
val core_gate : int

(** [run ?budget ?hints psi] computes the cover and minimizes the
    survivors.  [hints] are analyzer diagnostics whose
    {!Diagnostic.witness} homomorphisms are re-verified in O(tuples) via
    {!Hom.verify} and seed the containment matrix, skipping those
    searches.  Never raises; any internal failure degrades to the
    identity report with [complete = false]. *)
val run : ?budget:Budget.t -> ?hints:Diagnostic.t list -> Ucq.t -> report

(** [identity psi] is the no-op report ([changed = false],
    [complete = false]). *)
val identity : Ucq.t -> report

val disjuncts_removed : report -> int

(** [atoms_removed r] is [num_atoms original - num_atoms optimized]. *)
val atoms_removed : report -> int

(** [expansion_subsets r] is the [2^ℓ - 1] inclusion–exclusion subset
    count before and after (clamped to [max_int] for ℓ ≥ 62). *)
val expansion_subsets : report -> int * int

(** [support_shrink ?budget ?pool r] counts the non-zero-coefficient
    expansion classes (Lemma 26 support) of the original and optimized
    queries — the measured ℓ-shrink effect on the expansion engine.
    [None] when the [2^ℓ] profiling exhausts the budget. *)
val support_shrink :
  ?budget:Budget.t -> ?pool:Pool.t -> report -> (int * int) option

val describe_rewrite : rewrite -> string

(** [describe r] is the multi-line human rewrite report of
    [ucqc optimize]. *)
val describe : report -> string

(** [diagnostics ?env ?span r] renders the applied rewrites as UCQ40x
    diagnostics: [UCQ401]/[UCQ402] per dropped disjunct (carrying the
    witness homomorphism), [UCQ403] per minimized disjunct, and — when
    the query changed — one [UCQ404] carrying the machine-applicable
    whole-query {!Diagnostic.fix} (present when [span] locates the
    original text). *)
val diagnostics :
  ?env:Parse.query_env ->
  ?span:Diagnostic.span ->
  report ->
  Diagnostic.t list

val rewrite_to_json : rewrite -> Trace_json.t

(** [report_to_json ?env r] is the [--format json] payload of
    [ucqc optimize]. *)
val report_to_json : ?env:Parse.query_env -> report -> Trace_json.t
