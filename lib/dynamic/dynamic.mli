(** Dynamic counting of answers to q-hierarchical conjunctive queries
    under single-tuple updates (the Berkholz–Keppeler–Schweikardt setting
    of Section 1.2): linear-time preprocessing, then each insert/delete
    costs O(|φ|) hash operations — constant data complexity — and the
    count is read off in constant time. *)

type t

exception Not_q_hierarchical

(** [create q d] preprocesses [q] over the initial database [d]; the
    universe of [d] is fixed for the session (updates change tuples
    only).  Queries outside the q-hierarchical fragment, and databases
    whose signature does not cover the query's, yield
    [Error (Unsupported _)]. *)
val create : Cq.t -> Structure.t -> (t, Ucqc_error.t) result

(** Exception shim over {!create} for pre-existing callers.
    @raise Not_q_hierarchical when [q] fails the criterion.
    @raise Invalid_argument when [d]'s signature does not cover [q]'s. *)
val create_exn : Cq.t -> Structure.t -> t

(** [insert st name tuple] adds a tuple (idempotent; tuples of relations
    the query does not use are ignored). *)
val insert : t -> string -> int list -> unit

(** [delete st name tuple] removes a tuple (idempotent). *)
val delete : t -> string -> int list -> unit

(** [count st] is the current [ans(q → D)]. *)
val count : t -> int
