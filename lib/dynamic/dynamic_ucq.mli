(** Dynamic counting for exhaustively q-hierarchical UCQs
    ([12, Theorem 4.5], Section 1.2): one {!Dynamic} instance per combined
    query, summed by inclusion–exclusion.  Updates cost [2^ℓ - 1] constant
    instance updates — constant data complexity. *)

type t

exception Not_exhaustively_q_hierarchical

(** [create psi d] preprocesses all combined queries.  Unions outside
    the exhaustively q-hierarchical fragment yield
    [Error (Unsupported _)]. *)
val create : Ucq.t -> Structure.t -> (t, Ucqc_error.t) result

(** Exception shim over {!create} for pre-existing callers.
    @raise Not_exhaustively_q_hierarchical when some [∧(Ψ|J)] fails the
    criterion. *)
val create_exn : Ucq.t -> Structure.t -> t

val insert : t -> string -> int list -> unit
val delete : t -> string -> int list -> unit

(** [count st] is the current [ans(Ψ → D)]. *)
val count : t -> int
