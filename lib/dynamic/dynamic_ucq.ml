(** Dynamic counting for unions of conjunctive queries.

    Berkholz, Keppeler and Schweikardt extend their dichotomy from CQs to
    UCQs ([12, Theorem 4.5], Section 1.2 of the paper): a union is
    maintainable with constant-time updates iff it is {e exhaustively
    q-hierarchical} — every combined query [∧(Ψ|J)] is q-hierarchical.
    Under that condition, inclusion–exclusion turns the union count into a
    fixed linear combination of q-hierarchical CQ counts
    ([ans(Ψ) = Σ_(∅≠J) (-1)^(|J|+1) ans(∧(Ψ|J))]), each maintained by a
    {!Dynamic} instance.  A single-tuple update touches all [2^ℓ - 1]
    instances — constant in the data, exponential in the query, exactly as
    the theory prescribes (whether the query-complexity overhead of even
    {e checking} exhaustive q-hierarchicality can be improved is the open
    problem the paper quotes). *)

type t = { signs : int list; instances : Dynamic.t list }

exception Not_exhaustively_q_hierarchical

(** [create_exn psi d] preprocesses all combined queries.  Exception
    shim over {!create} for pre-existing callers.
    @raise Not_exhaustively_q_hierarchical when some [∧(Ψ|J)] fails the
    criterion. *)
let create_exn (psi : Ucq.t) (d : Structure.t) : t =
  if not (Ucq.is_exhaustively_q_hierarchical psi) then
    raise Not_exhaustively_q_hierarchical;
  let subsets = Combinat.nonempty_subsets (Ucq.length psi) in
  let signs = List.map (fun j -> if List.length j mod 2 = 1 then 1 else -1) subsets in
  let instances =
    List.map (fun j -> Dynamic.create_exn (Ucq.combined psi j) d) subsets
  in
  { signs; instances }

(** [create psi d] is {!create_exn} under the repo-standard result
    convention. *)
let create (psi : Ucq.t) (d : Structure.t) : (t, Ucqc_error.t) result =
  match create_exn psi d with
  | st -> Ok st
  | exception Not_exhaustively_q_hierarchical ->
      Error
        (Ucqc_error.Unsupported
           "dynamic counting requires an exhaustively q-hierarchical union \
            (every combined query q-hierarchical, Section 1.2)")
  | exception Invalid_argument msg -> Error (Ucqc_error.Unsupported msg)

(** [insert st name tuple] propagates an insertion to every combined-query
    instance. *)
let insert (st : t) (name : string) (tuple : int list) : unit =
  List.iter (fun inst -> Dynamic.insert inst name tuple) st.instances

(** [delete st name tuple] propagates a deletion. *)
let delete (st : t) (name : string) (tuple : int list) : unit =
  List.iter (fun inst -> Dynamic.delete inst name tuple) st.instances

(** [count st] is the current [ans(Ψ → D)] by inclusion–exclusion over the
    maintained combined-query counts. *)
let count (st : t) : int =
  List.fold_left2
    (fun acc sign inst -> acc + (sign * Dynamic.count inst))
    0 st.signs st.instances
