(** Dynamic counting of answers to q-hierarchical conjunctive queries
    under single-tuple updates — the Berkholz–Keppeler–Schweikardt setting
    the paper discusses in Section 1.2: after linear-time preprocessing,
    the answer count of a q-hierarchical CQ can be maintained with
    constant-time (data complexity) updates, and q-hierarchicality is
    exactly the boundary ([11, Theorem 1.3]).

    Construction.  In a hierarchical query the variable occurrence sets
    [atoms(x)] of any two variables are comparable or disjoint, so the
    variables form a forest under (strict) containment; every atom's
    variable set is then exactly {deepest variable} ∪ its ancestors.  Per
    variable [v] we maintain two hash tables:

    - [term(key, a)]: for ancestor values [key] and value [a] of [v], the
      product of the indicators of the atoms assigned to [v] (those whose
      deepest variable is [v]) and of the aggregates of [v]'s children;
    - [c(key) = Σ_a term(key, a)], where a {e quantified} child contributes
      to its parent as the indicator [c > 0] instead of the count
      (q-hierarchicality guarantees quantified variables are never proper
      ancestors of free ones, so the boolean collapse is sound).

    A tuple update fixes the values of one atom's full variable chain, so
    it touches exactly one [(key, a)] entry per atom occurrence and
    propagates along the ancestor path: O(|φ|) table operations per update
    — constant in the data.  The answer count is read off the root
    aggregates in O(#roots). *)

type node = {
  var : int;
  quantified : bool;
  ancestors : int list; (* root-first *)
  mutable children : int list; (* node indices *)
  mutable atoms : (string * int list) list; (* atoms assigned here *)
  term : (int list * int, int) Hashtbl.t;
  c : (int list, int) Hashtbl.t;
}

type t = {
  nodes : node array;
  node_of_var : (int, int) Hashtbl.t;
  roots : int list;
  rels : (string, (int list, unit) Hashtbl.t) Hashtbl.t;
  (* relation name -> atom occurrences (node index, argument variables) *)
  occurrences : (string, (int * int list) list) Hashtbl.t;
  universe_size : int;
  isolated_free : int;
  isolated_quantified : int;
}

exception Not_q_hierarchical

(* ------------------------------------------------------------------ *)
(* Forest construction                                                *)
(* ------------------------------------------------------------------ *)

let build_forest (q : Cq.t) : t =
  if not (Cq.is_q_hierarchical q) then raise Not_q_hierarchical;
  let a = Cq.structure q in
  let free = Cq.free q in
  (* atoms(x): occurrence sets as atom indices *)
  let atom_list =
    List.concat_map
      (fun (name, ts) -> List.map (fun tup -> (name, tup)) ts)
      (Structure.relations a)
  in
  let atoms_of = Hashtbl.create 16 in
  List.iteri
    (fun i (_, tup) ->
      List.iter
        (fun v ->
          let s = Option.value ~default:[] (Hashtbl.find_opt atoms_of v) in
          if not (List.mem i s) then Hashtbl.replace atoms_of v (i :: s))
        tup)
    atom_list;
  let covered =
    List.filter (Hashtbl.mem atoms_of) (Structure.universe a)
  in
  let isolated =
    List.filter (fun v -> not (Hashtbl.mem atoms_of v)) (Structure.universe a)
  in
  let isolated_free = List.length (List.filter (fun v -> List.mem v free) isolated) in
  let isolated_quantified = List.length isolated - isolated_free in
  (* order: larger atom sets first; among equals, free variables first
     (so a free twin becomes the ancestor of a quantified one), then by
     variable id *)
  let weight v =
    ( -List.length (Hashtbl.find atoms_of v),
      (if List.mem v free then 0 else 1),
      v )
  in
  let ordered = List.sort (fun u v -> compare (weight u) (weight v)) covered in
  let position = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace position v i) ordered;
  let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
  let ancestors_of v =
    let av = Hashtbl.find atoms_of v in
    List.filter
      (fun u ->
        u <> v
        && subset av (Hashtbl.find atoms_of u)
        && Hashtbl.find position u < Hashtbl.find position v)
      ordered
  in
  let nodes =
    Array.of_list
      (List.map
         (fun v ->
           {
             var = v;
             quantified = not (List.mem v free);
             ancestors = ancestors_of v;
             children = [];
             atoms = [];
             term = Hashtbl.create 64;
             c = Hashtbl.create 64;
           })
         ordered)
  in
  let node_of_var = Hashtbl.create 16 in
  Array.iteri (fun i n -> Hashtbl.replace node_of_var n.var i) nodes;
  (* parents and children *)
  let roots = ref [] in
  Array.iteri
    (fun i n ->
      match List.rev n.ancestors with
      | [] -> roots := i :: !roots
      | parent_var :: _ ->
          let p = Hashtbl.find node_of_var parent_var in
          nodes.(p).children <- i :: nodes.(p).children)
    nodes;
  (* assign each atom to its deepest variable, and check the chain
     property: the atom's variables are exactly that node plus its
     ancestors *)
  let occurrences = Hashtbl.create 16 in
  List.iter
    (fun (name, tup) ->
      let vars = List.sort_uniq compare tup in
      let deepest =
        Listx.max_by (fun v -> Hashtbl.find position v) vars
      in
      let d = Hashtbl.find node_of_var deepest in
      let expected =
        List.sort compare (deepest :: nodes.(d).ancestors)
      in
      if List.sort compare vars <> expected then
        (* cannot happen for hierarchical queries; defensive *)
        raise Not_q_hierarchical;
      nodes.(d).atoms <- (name, tup) :: nodes.(d).atoms;
      Hashtbl.replace occurrences name
        ((d, tup) :: Option.value ~default:[] (Hashtbl.find_opt occurrences name)))
    atom_list;
  let rels = Hashtbl.create 8 in
  List.iter
    (fun (s : Signature.symbol) -> Hashtbl.replace rels s.name (Hashtbl.create 256))
    (Structure.signature a);
  {
    nodes;
    node_of_var;
    roots = !roots;
    rels;
    occurrences;
    universe_size = 0;
    isolated_free;
    isolated_quantified;
  }

(* ------------------------------------------------------------------ *)
(* Aggregate maintenance                                              *)
(* ------------------------------------------------------------------ *)

(** Contribution of node [i] to its parent, for a given key. *)
let contribution (st : t) (i : int) (key : int list) : int =
  let n = st.nodes.(i) in
  let v = Option.value ~default:0 (Hashtbl.find_opt n.c key) in
  if n.quantified then if v > 0 then 1 else 0 else v

(** Recompute [term(key, a)] of node [i] from relations and children. *)
let compute_term (st : t) (i : int) (key : int list) (a : int) : int =
  let n = st.nodes.(i) in
  let env = List.combine (n.ancestors @ [ n.var ]) (key @ [ a ]) in
  let atoms_ok =
    List.for_all
      (fun (name, args) ->
        let tup = List.map (fun v -> List.assoc v env) args in
        Hashtbl.mem (Hashtbl.find st.rels name) tup)
      n.atoms
  in
  if not atoms_ok then 0
  else
    List.fold_left
      (fun acc child ->
        if acc = 0 then 0 else acc * contribution st child (key @ [ a ]))
      1 n.children

(** Refresh the entry [(key, a)] of node [i] and propagate any change of
    the node's parent-facing contribution up the ancestor path. *)
let rec refresh (st : t) (i : int) (key : int list) (a : int) : unit =
  let n = st.nodes.(i) in
  let before_contrib = contribution st i key in
  let old_term = Option.value ~default:0 (Hashtbl.find_opt n.term (key, a)) in
  let new_term = compute_term st i key a in
  if new_term <> old_term then begin
    if new_term = 0 then Hashtbl.remove n.term (key, a)
    else Hashtbl.replace n.term (key, a) new_term;
    let old_c = Option.value ~default:0 (Hashtbl.find_opt n.c key) in
    let new_c = old_c + new_term - old_term in
    if new_c = 0 then Hashtbl.remove n.c key else Hashtbl.replace n.c key new_c
  end;
  let after_contrib = contribution st i key in
  if after_contrib <> before_contrib then begin
    match List.rev n.ancestors with
    | [] -> ()
    | parent_var :: _ ->
        (* the parent's entry is determined by splitting our key *)
        let rec split_last = function
          | [ x ] -> ([], x)
          | x :: rest ->
              let init, last = split_last rest in
              (x :: init, last)
          | [] -> assert false
        in
        let parent_key, parent_a = split_last key in
        refresh st (Hashtbl.find st.node_of_var parent_var) parent_key parent_a
  end

(** Apply one tuple change: refresh every atom occurrence of the relation
    whose variable chain is consistent with the tuple. *)
let touch (st : t) (name : string) (tuple : int list) : unit =
  List.iter
    (fun (d, args) ->
      (* bind the atom's variables from the tuple, honouring repetition *)
      let binding = Hashtbl.create 4 in
      let consistent =
        List.for_all2
          (fun qv dv ->
            match Hashtbl.find_opt binding qv with
            | None ->
                Hashtbl.replace binding qv dv;
                true
            | Some dv' -> dv = dv')
          args tuple
      in
      if consistent then begin
        let n = st.nodes.(d) in
        let key = List.map (Hashtbl.find binding) n.ancestors in
        let a = Hashtbl.find binding n.var in
        refresh st d key a
      end)
    (Option.value ~default:[] (Hashtbl.find_opt st.occurrences name))

(* ------------------------------------------------------------------ *)
(* Public interface                                                   *)
(* ------------------------------------------------------------------ *)

(** [create_exn q d] preprocesses the q-hierarchical query [q] over the
    initial database [d] (whose universe is fixed for the session).
    Exception shim over {!create} for pre-existing callers.
    @raise Not_q_hierarchical when [q] is not q-hierarchical.
    @raise Invalid_argument when [d]'s signature does not cover [q]'s. *)
let create_exn (q : Cq.t) (d : Structure.t) : t =
  if
    not
      (Signature.subset
         (Structure.signature (Cq.structure q))
         (Structure.signature d))
  then invalid_arg "Dynamic.create: database signature does not cover the query";
  let st = { (build_forest q) with universe_size = Structure.universe_size d } in
  List.iter
    (fun (name, ts) ->
      if Hashtbl.mem st.rels name then
        List.iter
          (fun tup ->
            Hashtbl.replace (Hashtbl.find st.rels name) tup ();
            touch st name tup)
          ts)
    (Structure.relations d);
  st

(** [create q d] is {!create_exn} under the repo-standard result
    convention: structured {!Ucqc_error.t} values instead of bare
    exceptions. *)
let create (q : Cq.t) (d : Structure.t) : (t, Ucqc_error.t) result =
  match create_exn q d with
  | st -> Ok st
  | exception Not_q_hierarchical ->
      Error
        (Ucqc_error.Unsupported
           "dynamic counting requires a q-hierarchical query (Section 1.2)")
  | exception Invalid_argument msg -> Error (Ucqc_error.Unsupported msg)

(** [insert st name tuple] adds a tuple (idempotent). *)
let insert (st : t) (name : string) (tuple : int list) : unit =
  match Hashtbl.find_opt st.rels name with
  | None -> () (* relation not used by the query *)
  | Some set ->
      if not (Hashtbl.mem set tuple) then begin
        Hashtbl.replace set tuple ();
        touch st name tuple
      end

(** [delete st name tuple] removes a tuple (idempotent). *)
let delete (st : t) (name : string) (tuple : int list) : unit =
  match Hashtbl.find_opt st.rels name with
  | None -> ()
  | Some set ->
      if Hashtbl.mem set tuple then begin
        Hashtbl.remove set tuple;
        touch st name tuple
      end

(** [count st] is the current [ans(q → D)], read from the root aggregates
    in time independent of the data. *)
let count (st : t) : int =
  if st.isolated_quantified > 0 && st.universe_size = 0 then 0
  else begin
    let product =
      List.fold_left
        (fun acc r -> if acc = 0 then 0 else acc * contribution st r [])
        1 st.roots
    in
    product * Combinat.power_int st.universe_size st.isolated_free
  end
