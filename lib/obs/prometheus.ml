(** Prometheus text exposition (format 0.0.4): builder, parser and
    conformance checker.  See the interface for the contract. *)

type kind = Counter | Gauge

(* ------------------------------------------------------------------ *)
(* Names and formatting                                               *)
(* ------------------------------------------------------------------ *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let is_digit c = c >= '0' && c <= '9'

let sanitize (name : string) : string =
  if name = "" then "_"
  else begin
    let b = Bytes.of_string name in
    Bytes.iteri (fun i c -> if not (is_name_char c) then Bytes.set b i '_') b;
    let s = Bytes.to_string b in
    if is_digit s.[0] then "_" ^ s else s
  end

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let fmt_value (v : float) : string =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let escape_label (s : string) : string =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help (s : string) : string =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let labels_str (labels : (string * string) list) : string =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v))
           labels)
    ^ "}"

(* ------------------------------------------------------------------ *)
(* Builder                                                            *)
(* ------------------------------------------------------------------ *)

type fam = {
  fname : string;
  ftype : string; (* "counter" | "gauge" | "histogram" *)
  fhelp : string option;
  mutable fscalars : ((string * string) list * float) list; (* reversed *)
  mutable fhists : ((string * string) list * int array * float) list;
      (* (labels, log2 counts, sum), reversed *)
}

type t = {
  tbl : (string, fam) Hashtbl.t;
  mutable order : string list; (* reversed registration order *)
}

let create () : t = { tbl = Hashtbl.create 32; order = [] }

let family (t : t) (name : string) (ftype : string) (help : string option) :
    fam =
  match Hashtbl.find_opt t.tbl name with
  | Some f ->
      if f.ftype <> ftype then
        invalid_arg
          (Printf.sprintf "Prometheus: %s registered as %s, reused as %s" name
             f.ftype ftype);
      f
  | None ->
      let f =
        { fname = name; ftype; fhelp = help; fscalars = []; fhists = [] }
      in
      Hashtbl.add t.tbl name f;
      t.order <- name :: t.order;
      f

let scalar (t : t) ?help ?(labels = []) ~(kind : kind) (name : string)
    (v : float) : unit =
  let name = sanitize name in
  let name, ftype =
    match kind with
    | Counter ->
        ((if ends_with ~suffix:"_total" name then name else name ^ "_total"),
         "counter")
    | Gauge -> (name, "gauge")
  in
  let f = family t name ftype help in
  f.fscalars <- (labels, v) :: f.fscalars

let log2_histogram (t : t) ?help ?(labels = []) (name : string)
    ~(counts : int array) ~(sum : float) : unit =
  let name = sanitize name in
  let f = family t name "histogram" help in
  f.fhists <- (labels, Array.copy counts, sum) :: f.fhists

let render (t : t) : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun name ->
      let f = Hashtbl.find t.tbl name in
      (match f.fhelp with
      | Some h ->
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" f.fname (escape_help h))
      | None -> ());
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f.fname f.ftype);
      List.iter
        (fun (labels, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" f.fname (labels_str labels)
               (fmt_value v)))
        (List.rev f.fscalars);
      List.iter
        (fun (labels, counts, sum) ->
          let cum = ref 0 in
          Array.iteri
            (fun b n ->
              if n > 0 then begin
                cum := !cum + n;
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" f.fname
                     (labels_str
                        (labels @ [ ("le", fmt_value (Rolling.bucket_upper b)) ]))
                     !cum)
              end)
            counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" f.fname
               (labels_str (labels @ [ ("le", "+Inf") ]))
               !cum);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" f.fname (labels_str labels)
               (fmt_value sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" f.fname (labels_str labels) !cum))
        (List.rev f.fhists))
    (List.rev t.order);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Scraping side: line scanner                                        *)
(* ------------------------------------------------------------------ *)

type sample = {
  sname : string;
  slabels : (string * string) list;
  svalue : float;
}

type item =
  | IComment
  | IHelp of string
  | IType of string * string
  | ISample of sample

exception Bad of string

let parse_float (s : string) : float =
  match s with
  | "+Inf" | "+inf" | "Inf" -> Float.infinity
  | "-Inf" | "-inf" -> Float.neg_infinity
  | "NaN" | "nan" -> Float.nan
  | s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> raise (Bad (Printf.sprintf "bad number %S" s)))

(* [name ['{' k '="' v '",' ... '}'] ws value [ws timestamp]] *)
let scan_sample (line : string) : sample =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let take_name_chars ok what =
    let start = !pos in
    while !pos < n && ok line.[!pos] do
      incr pos
    done;
    if !pos = start then
      raise (Bad (Printf.sprintf "expected %s at column %d" what (start + 1)));
    String.sub line start (!pos - start)
  in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else
      raise
        (Bad (Printf.sprintf "expected %C at column %d" c (!pos + 1)))
  in
  let sname = take_name_chars is_name_char "metric name" in
  let slabels =
    if peek () <> Some '{' then []
    else begin
      incr pos;
      let acc = ref [] in
      let rec loop () =
        skip_ws ();
        if peek () = Some '}' then incr pos
        else begin
          let k =
            take_name_chars
              (fun c -> is_name_char c && c <> ':')
              "label name"
          in
          expect '=';
          expect '"';
          let buf = Buffer.create 16 in
          let rec str () =
            match peek () with
            | None -> raise (Bad "unterminated label value")
            | Some '"' -> incr pos
            | Some '\\' ->
                incr pos;
                (match peek () with
                | Some '\\' -> Buffer.add_char buf '\\'
                | Some '"' -> Buffer.add_char buf '"'
                | Some 'n' -> Buffer.add_char buf '\n'
                | _ -> raise (Bad "bad escape in label value"));
                incr pos;
                str ()
            | Some c ->
                Buffer.add_char buf c;
                incr pos;
                str ()
          in
          str ();
          acc := (k, Buffer.contents buf) :: !acc;
          skip_ws ();
          match peek () with
          | Some ',' ->
              incr pos;
              loop ()
          | Some '}' -> incr pos
          | _ -> raise (Bad "expected ',' or '}' in label set")
        end
      in
      loop ();
      List.rev !acc
    end
  in
  skip_ws ();
  let vstart = !pos in
  while !pos < n && line.[!pos] <> ' ' && line.[!pos] <> '\t' do
    incr pos
  done;
  if !pos = vstart then raise (Bad "missing sample value");
  let svalue = parse_float (String.sub line vstart (!pos - vstart)) in
  skip_ws ();
  (* optional timestamp: integer milliseconds *)
  if !pos < n then begin
    let tstart = !pos in
    while !pos < n && not (line.[!pos] = ' ' || line.[!pos] = '\t') do
      incr pos
    done;
    let ts = String.sub line tstart (!pos - tstart) in
    if int_of_string_opt ts = None then
      raise (Bad (Printf.sprintf "bad timestamp %S" ts));
    skip_ws ();
    if !pos < n then raise (Bad "trailing garbage after timestamp")
  end;
  { sname; slabels; svalue }

let scan_comment (line : string) : item =
  (* "# HELP name text" | "# TYPE name type" | any other comment *)
  let starts_with p =
    String.length line >= String.length p
    && String.sub line 0 (String.length p) = p
  in
  let word_after prefix =
    let rest = String.sub line (String.length prefix)
        (String.length line - String.length prefix) in
    match String.index_opt rest ' ' with
    | Some i -> (String.sub rest 0 i, String.sub rest (i + 1) (String.length rest - i - 1))
    | None -> (rest, "")
  in
  if starts_with "# HELP " then begin
    let name, _ = word_after "# HELP " in
    if name = "" || not (String.for_all is_name_char name) then
      raise (Bad "bad HELP line");
    IHelp name
  end
  else if starts_with "# TYPE " then begin
    let name, ty = word_after "# TYPE " in
    if name = "" || not (String.for_all is_name_char name) then
      raise (Bad "bad TYPE line");
    (match ty with
    | "counter" | "gauge" | "histogram" | "summary" | "untyped" -> ()
    | _ -> raise (Bad (Printf.sprintf "bad TYPE %S for %s" ty name)));
    IType (name, ty)
  end
  else IComment

let scan (text : string) : (item list, string) result =
  let lines = String.split_on_char '\n' text in
  let strip_cr s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
  in
  try
    Ok
      (List.concat
         (List.mapi
            (fun i line ->
              let line = strip_cr line in
              try
                if line = "" then []
                else if line.[0] = '#' then [ scan_comment line ]
                else [ ISample (scan_sample line) ]
              with Bad msg ->
                raise (Bad (Printf.sprintf "line %d: %s" (i + 1) msg)))
            lines))
  with Bad msg -> Error msg

let parse (text : string) : (sample list, string) result =
  match scan text with
  | Error e -> Error e
  | Ok items ->
      Ok
        (List.filter_map
           (function ISample s -> Some s | _ -> None)
           items)

let find ?(labels = []) (samples : sample list) (name : string) : float option
    =
  List.find_map
    (fun s ->
      if
        s.sname = name
        && List.for_all
             (fun (k, v) -> List.assoc_opt k s.slabels = Some v)
             labels
      then Some s.svalue
      else None)
    samples

(* ------------------------------------------------------------------ *)
(* Conformance checking                                               *)
(* ------------------------------------------------------------------ *)

let labels_key (labels : (string * string) list) : string =
  List.sort compare labels
  |> List.map (fun (k, v) -> k ^ "\x00" ^ v ^ "\x01")
  |> String.concat ""

let validate (text : string) : (int, string) result =
  match scan text with
  | Error e -> Error e
  | Ok items -> (
      let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
      let helps : (string, unit) Hashtbl.t = Hashtbl.create 16 in
      let sampled : (string, unit) Hashtbl.t = Hashtbl.create 16 in
      let seen_samples : (string, unit) Hashtbl.t = Hashtbl.create 64 in
      (* histogram bookkeeping: per (family, label-set-sans-le) *)
      let hbuckets : (string * string, (float * float) list ref) Hashtbl.t =
        Hashtbl.create 16
      in
      let hsums : (string * string, float) Hashtbl.t = Hashtbl.create 16 in
      let hcounts : (string * string, float) Hashtbl.t = Hashtbl.create 16 in
      let closed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
      let current = ref "" in
      let nsamples = ref 0 in
      let family_of sname =
        let strip suffix =
          if ends_with ~suffix sname then
            let base =
              String.sub sname 0 (String.length sname - String.length suffix)
            in
            if Hashtbl.find_opt types base = Some "histogram" then Some base
            else None
          else None
        in
        match strip "_bucket" with
        | Some b -> b
        | None -> (
            match strip "_sum" with
            | Some b -> b
            | None -> (
                match strip "_count" with Some b -> b | None -> sname))
      in
      let enter fam =
        if !current <> fam then begin
          if Hashtbl.mem closed fam then
            raise
              (Bad
                 (Printf.sprintf "family %s is not contiguous in exposition"
                    fam));
          if !current <> "" then Hashtbl.replace closed !current ();
          current := fam
        end
      in
      try
        List.iter
          (fun item ->
            match item with
            | IComment -> ()
            | IHelp name ->
                if Hashtbl.mem helps name then
                  raise (Bad (Printf.sprintf "duplicate HELP for %s" name));
                Hashtbl.replace helps name ();
                enter name
            | IType (name, ty) ->
                if Hashtbl.mem types name then
                  raise (Bad (Printf.sprintf "duplicate TYPE for %s" name));
                if Hashtbl.mem sampled name then
                  raise
                    (Bad
                       (Printf.sprintf "TYPE for %s after its samples" name));
                Hashtbl.replace types name ty;
                enter name
            | ISample s ->
                incr nsamples;
                let fam = family_of s.sname in
                enter fam;
                Hashtbl.replace sampled fam ();
                let key = s.sname ^ "\x02" ^ labels_key s.slabels in
                if Hashtbl.mem seen_samples key then
                  raise
                    (Bad (Printf.sprintf "duplicate sample %s" s.sname));
                Hashtbl.replace seen_samples key ();
                let fam_type = Hashtbl.find_opt types fam in
                if fam_type = Some "counter" then begin
                  if Float.is_nan s.svalue || s.svalue < 0. then
                    raise
                      (Bad
                         (Printf.sprintf "counter %s has invalid value %g"
                            s.sname s.svalue))
                end;
                if fam_type = Some "histogram" then begin
                  if ends_with ~suffix:"_bucket" s.sname then begin
                    let le =
                      match List.assoc_opt "le" s.slabels with
                      | Some le -> parse_float le
                      | None ->
                          raise
                            (Bad
                               (Printf.sprintf "%s sample without le label"
                                  s.sname))
                    in
                    let rest =
                      List.filter (fun (k, _) -> k <> "le") s.slabels
                    in
                    let key = (fam, labels_key rest) in
                    let cell =
                      match Hashtbl.find_opt hbuckets key with
                      | Some r -> r
                      | None ->
                          let r = ref [] in
                          Hashtbl.add hbuckets key r;
                          r
                    in
                    cell := (le, s.svalue) :: !cell
                  end
                  else if ends_with ~suffix:"_sum" s.sname then
                    Hashtbl.replace hsums (fam, labels_key s.slabels) s.svalue
                  else if ends_with ~suffix:"_count" s.sname then
                    Hashtbl.replace hcounts (fam, labels_key s.slabels)
                      s.svalue
                end)
          items;
        (* per-histogram-series invariants *)
        Hashtbl.iter
          (fun (fam, lkey) cell ->
            let bs = List.rev !cell in
            let rec check_sorted prev = function
              | [] -> ()
              | (le, v) :: tl ->
                  (match prev with
                  | Some (ple, pv) ->
                      if not (le > ple) then
                        raise
                          (Bad
                             (Printf.sprintf
                                "%s: le buckets not sorted ascending" fam));
                      if v < pv then
                        raise
                          (Bad
                             (Printf.sprintf
                                "%s: bucket counts not cumulative" fam))
                  | None -> ());
                  check_sorted (Some (le, v)) tl
            in
            check_sorted None bs;
            (match List.rev bs with
            | (le, vinf) :: _ when le = Float.infinity -> (
                match Hashtbl.find_opt hcounts (fam, lkey) with
                | Some c when c = vinf -> ()
                | Some c ->
                    raise
                      (Bad
                         (Printf.sprintf
                            "%s: +Inf bucket %g disagrees with _count %g" fam
                            vinf c))
                | None ->
                    raise
                      (Bad (Printf.sprintf "%s: missing _count sample" fam)))
            | _ ->
                raise
                  (Bad (Printf.sprintf "%s: missing le=\"+Inf\" bucket" fam)));
            if not (Hashtbl.mem hsums (fam, lkey)) then
              raise (Bad (Printf.sprintf "%s: missing _sum sample" fam)))
          hbuckets;
        Ok !nsamples
      with Bad msg -> Error msg)
