(** Lock-free rolling-window histograms.  See the interface for the
    contract and the concurrency caveats. *)

let buckets = 64

let bucket_of (v : float) : int =
  if v <= 0. || Float.is_nan v then 0
  else begin
    let _, e = Float.frexp v in
    max 0 (min 63 (e + 31))
  end

let bucket_upper (b : int) : float = Float.ldexp 1. (b - 31)

let quantile_of_counts (counts : int array) (p : float) : float =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.
  else begin
    let p = Float.max 0. (Float.min 1. p) in
    let rank = max 1 (int_of_float (Float.ceil (p *. float_of_int total))) in
    let n = Array.length counts in
    let rec go i cum =
      if i >= n then bucket_upper (n - 1)
      else begin
        let cum = cum + counts.(i) in
        if cum >= rank then bucket_upper i else go (i + 1) cum
      end
    in
    go 0 0
  end

(* One slot holds the counts for one window period.  [period] names the
   period the counts belong to; observers CAS it forward when the slot
   rotates and the winner zeroes the buckets. *)
type slot = { period : int Atomic.t; counts : int Atomic.t array }

type t = { slot_s : float; nslots : int; slots : slot array }

let create ?(window_s = 60.) ?(slots = 6) () : t =
  let slots = max 1 slots in
  let window_s = if window_s <= 0. then 60. else window_s in
  {
    slot_s = window_s /. float_of_int slots;
    (* one spare slot so the slot being overwritten for the next period
       is never also counted as the oldest live one *)
    nslots = slots + 1;
    slots =
      Array.init (slots + 1) (fun _ ->
          {
            period = Atomic.make (-1);
            counts = Array.init buckets (fun _ -> Atomic.make 0);
          });
  }

let period_of (t : t) (now : float) : int = int_of_float (now /. t.slot_s)

let slot_for (t : t) (pi : int) : slot = t.slots.(pi mod t.nslots)

let observe ?now (t : t) (v : float) : unit =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  let pi = period_of t now in
  let s = slot_for t pi in
  let cur = Atomic.get s.period in
  if cur <> pi then
    (* rotation: exactly one racer wins the CAS and zeroes; observations
       landing between the CAS and the zeroing can be lost — accepted *)
    if Atomic.compare_and_set s.period cur pi then
      Array.iter (fun c -> Atomic.set c 0) s.counts;
  Atomic.incr s.counts.(bucket_of v)

let live_fold ?now (t : t) (f : 'a -> slot -> 'a) (init : 'a) : 'a =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  let pi = period_of t now in
  (* live = current partial period plus the nslots - 2 full ones before
     it; anything older has slid out of the window *)
  let oldest = pi - (t.nslots - 2) in
  Array.fold_left
    (fun acc s ->
      let p = Atomic.get s.period in
      if p >= oldest && p <= pi then f acc s else acc)
    init t.slots

let snapshot ?now (t : t) : int array =
  let out = Array.make buckets 0 in
  live_fold ?now t
    (fun () s ->
      Array.iteri (fun i c -> out.(i) <- out.(i) + Atomic.get c) s.counts)
    ();
  out

let count ?now (t : t) : int =
  live_fold ?now t
    (fun acc s -> Array.fold_left (fun a c -> a + Atomic.get c) acc s.counts)
    0

let quantile ?now (t : t) (p : float) : float =
  quantile_of_counts (snapshot ?now t) p
