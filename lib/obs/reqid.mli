(** Request-id generation: short, process-unique, lock-free.

    Every evaluated server request gets an id like ["r-1a2b3c-42"] —
    a per-process token (pid and start time folded to hex) plus an
    atomic sequence number — threaded through the telemetry span, the
    access log, the slow-query log and the response body, so one id
    joins all four views of a request.  Ids are identifiers, not
    secrets: they are guessable by design (sequence order is itself
    useful when tailing logs). *)

type gen

(** [create ()] seeds a generator from the pid and wall clock. *)
val create : unit -> gen

(** [next g] is a fresh id; safe from any thread (one fetch-and-add). *)
val next : gen -> string
