(** Slow-query log records: the drift signal made durable.

    The plan predictor (E16-calibrated, [Plan.rep_cost]) claims
    per-query cost is readable off query structure.  A slow-query entry
    is one counterexample: a request whose observed budget steps
    exceeded [k ×] the prediction.  The server appends one JSON line
    per firing; [tools/obs_check.exe] reads them back with {!of_json}
    to assert the pipeline works end to end, and an operator feeds them
    to the future [--optimize] selector as training signal.

    One entry = one line of JSON (no embedded newlines), so the file is
    greppable and tail-safe; the writer is the evaluator thread only,
    so lines are never interleaved. *)

type entry = {
  ts : float;  (** wall clock, seconds since epoch *)
  request_id : string;
  query : string;  (** primary query text as received *)
  op : string;  (** wire op, e.g. ["count"] *)
  predicted_cost : float;  (** [Plan.cost] estimate, in budget steps *)
  observed_steps : int;  (** [Budget.steps_done] at completion *)
  factor : float;  (** observed / predicted *)
  threshold : float;  (** the [k] that made this entry fire *)
  degradation : string;  (** ["exact"], ["karp-luby"], or an error code *)
  lint_codes : string list;  (** static-analysis diagnostics on the query *)
  elapsed_ms : float;
}

(** [to_json e] is the entry as one line of JSON (newline {e not}
    included). *)
val to_json : entry -> string

(** [of_json line] parses a line {!to_json} produced.  [Error] on
    malformed input or missing fields. *)
val of_json : string -> (entry, string) result
