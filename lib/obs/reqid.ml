(** Request-id generation.  See the interface for the contract. *)

type gen = { token : string; seq : int Atomic.t }

let create () : gen =
  let pid = Unix.getpid () in
  let t = int_of_float (Unix.gettimeofday () *. 1e3) in
  (* fold pid and boot time into a short hex token that distinguishes
     server restarts (so ids from two runs never collide in merged logs) *)
  let mix = (pid * 0x9e3779b1) lxor (t land 0xffffffff) in
  { token = Printf.sprintf "%06x" (mix land 0xffffff); seq = Atomic.make 0 }

let next (g : gen) : string =
  Printf.sprintf "r-%s-%d" g.token (Atomic.fetch_and_add g.seq 1)
