(** Lock-free rolling-window histograms and quantile extraction.

    {!Telemetry} histograms are cumulative-since-boot: right for
    Prometheus (rate math happens scrape-side) but wrong for "p99 over
    the last minute" — a resident server's lifetime histogram is
    dominated by history.  A {!t} keeps the same 64-bucket base-2 log
    layout sliced into time slots that expire as the window slides, so
    quantiles always describe recent traffic.

    {b Concurrency.}  [observe] is lock-free: one CAS when a slot
    rotates into a new period, atomic increments otherwise.  A rotation
    racing concurrent observers can drop (or double-drop) the handful of
    observations in flight during the zeroing — monitoring-grade by
    design, never on the query path.

    {b Quantiles.}  Extraction is bucket-resolution: the reported value
    is the {e upper edge} of the bucket containing the rank-⌈p·n⌉
    sample.  Deterministic and merge-order independent — merging two
    count arrays in either order yields identical quantiles — at the
    cost of up-to-2× overshoot, which is the right trade for log-scale
    latency monitoring. *)

(** Number of buckets (64), same layout as {!Telemetry.histogram}:
    bucket [b] covers [[2^(b-32), 2^(b-31))]. *)
val buckets : int

(** [bucket_of v] is the bucket index of value [v]; non-positive and NaN
    values clamp to bucket 0, huge values clamp to bucket 63. *)
val bucket_of : float -> int

(** [bucket_upper b] is the exclusive upper edge [2^(b-31)] of bucket
    [b] — the value quantile extraction reports. *)
val bucket_upper : int -> float

(** [quantile_of_counts counts p] extracts the [p]-quantile (clamped to
    [[0, 1]]) from a log₂ bucket-count array: the upper edge of the
    bucket containing the rank-⌈p·n⌉ observation.  [0.] when the array
    is empty of observations.  Works on {!Telemetry.histogram_snapshot}
    counts and rolling-window snapshots alike. *)
val quantile_of_counts : int array -> float -> float

type t

(** [create ?window_s ?slots ()] is a rolling window covering the last
    [window_s] seconds (default 60) sliced into [slots] time slots
    (default 6; more slots = smoother expiry, more memory). *)
val create : ?window_s:float -> ?slots:int -> unit -> t

(** [observe t ?now v] drops [v] into the current time slot.  [now]
    (seconds, e.g. [Unix.gettimeofday]) defaults to the wall clock and
    exists so tests can drive the window deterministically. *)
val observe : ?now:float -> t -> float -> unit

(** [snapshot ?now t] sums the live (non-expired) slots into one
    64-bucket count array. *)
val snapshot : ?now:float -> t -> int array

(** [count ?now t] is the number of live observations. *)
val count : ?now:float -> t -> int

(** [quantile ?now t p] = [quantile_of_counts (snapshot ?now t) p]. *)
val quantile : ?now:float -> t -> float -> float
