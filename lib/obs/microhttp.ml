(** Minimal total HTTP/1.x parsing for the metrics gateway.  See the
    interface for the contract. *)

type request = { meth : string; target : string }

let is_token_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || String.contains "!#$%&'*+-.^_`|~" c

let parse_request (head : string) : (request, string) result =
  let line =
    match String.index_opt head '\n' with
    | Some i -> String.sub head 0 i
    | None -> head
  in
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  match String.split_on_char ' ' line with
  | [ meth; target; version ] ->
      if meth = "" || not (String.for_all is_token_char meth) then
        Error "malformed method"
      else if target = "" then Error "empty request target"
      else if
        not
          (String.length version >= 5 && String.sub version 0 5 = "HTTP/")
      then Error "malformed HTTP version"
      else Ok { meth; target }
  | _ -> Error "malformed request line"

let path (target : string) : string =
  match String.index_opt target '?' with
  | Some i -> String.sub target 0 i
  | None -> target

let head_complete (buf : string) : bool =
  let n = String.length buf in
  let rec scan i =
    if i + 1 >= n then false
    else if buf.[i] = '\n' && (buf.[i + 1] = '\n' || (i + 2 < n && buf.[i + 1] = '\r' && buf.[i + 2] = '\n'))
    then true
    else scan (i + 1)
  in
  (* also complete when the head is just one line so far and the peer
     half-closed: callers treat EOF as completion themselves *)
  scan 0

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let response ~(status : int) ?(content_type = "text/plain; charset=utf-8")
    (body : string) : string =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status (status_text status) content_type (String.length body) body
