(** Total parsing and rendering for the sliver of HTTP/1.x the metrics
    gateway speaks: [GET] requests in, fixed-length close-delimited
    responses out.

    Same philosophy as {!Framer}: a pure total function over bytes read
    from an untrusted socket — a scraper pointing a browser, curl, or
    garbage at the port must never raise out of the parser.  No keep-
    alive, no chunked bodies, no headers the gateway cares about; every
    response carries [Connection: close] and the socket is closed after
    the write, which is exactly the lifecycle Prometheus scrapers
    expect. *)

type request = {
  meth : string;  (** request method, e.g. ["GET"] *)
  target : string;  (** request target as sent, e.g. ["/metrics"] *)
}

(** [parse_request head] parses the first line of a request head (bytes
    up to the blank line; anything after the first line — headers — is
    ignored).  Total: malformed input yields [Error]. *)
val parse_request : string -> (request, string) result

(** [path target] is [target] with any query string ([?...]) dropped. *)
val path : string -> string

(** [head_complete buf] is true once [buf] contains the end of a
    request head (a blank line) — the moment the gateway can parse and
    reply. *)
val head_complete : string -> bool

(** [response ~status ?content_type body] renders a full HTTP/1.1
    response with [Content-Length] and [Connection: close]. *)
val response : status:int -> ?content_type:string -> string -> string

val status_text : int -> string
