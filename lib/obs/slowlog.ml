(** Slow-query log records.  See the interface for the schema. *)

type entry = {
  ts : float;
  request_id : string;
  query : string;
  op : string;
  predicted_cost : float;
  observed_steps : int;
  factor : float;
  threshold : float;
  degradation : string;
  lint_codes : string list;
  elapsed_ms : float;
}

let to_json (e : entry) : string =
  let open Trace_json in
  to_string
    (Obj
       [
         ("ts", Num e.ts);
         ("request_id", Str e.request_id);
         ("query", Str e.query);
         ("op", Str e.op);
         ("predicted_cost", Num e.predicted_cost);
         ("observed_steps", Num (float_of_int e.observed_steps));
         ("factor", Num e.factor);
         ("threshold", Num e.threshold);
         ("degradation", Str e.degradation);
         ("lint_codes", Arr (List.map (fun c -> Str c) e.lint_codes));
         ("elapsed_ms", Num e.elapsed_ms);
       ])

let of_json (line : string) : (entry, string) result =
  let open Trace_json in
  match try Ok (parse line) with Failure m -> Error m with
  | Error m -> Error ("slowlog: " ^ m)
  | Ok v -> (
      let str k =
        match member k v with
        | Some (Str s) -> Ok s
        | _ -> Error (Printf.sprintf "slowlog: missing string field %S" k)
      in
      let num k =
        match member k v with
        | Some (Num f) -> Ok f
        | _ -> Error (Printf.sprintf "slowlog: missing numeric field %S" k)
      in
      let ( let* ) r f = match r with Ok x -> f x | Error e -> Error e in
      let* ts = num "ts" in
      let* request_id = str "request_id" in
      let* query = str "query" in
      let* op = str "op" in
      let* predicted_cost = num "predicted_cost" in
      let* observed_steps = num "observed_steps" in
      let* factor = num "factor" in
      let* threshold = num "threshold" in
      let* degradation = str "degradation" in
      let* elapsed_ms = num "elapsed_ms" in
      let* lint_codes =
        match member "lint_codes" v with
        | Some (Arr xs) ->
            List.fold_left
              (fun acc x ->
                match (acc, x) with
                | Ok l, Str s -> Ok (s :: l)
                | Ok _, _ -> Error "slowlog: non-string lint code"
                | (Error _ as e), _ -> e)
              (Ok []) xs
            |> Result.map List.rev
        | _ -> Error "slowlog: missing lint_codes"
      in
      Ok
        {
          ts;
          request_id;
          query;
          op;
          predicted_cost;
          observed_steps = int_of_float observed_steps;
          factor;
          threshold;
          degradation;
          lint_codes;
          elapsed_ms;
        })
