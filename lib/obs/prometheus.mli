(** Prometheus text exposition: building, parsing, and conformance
    checking (exposition format 0.0.4).

    Three consumers share this module: the server's [/metrics] endpoint
    builds an exposition with {!create}/{!scalar}/{!log2_histogram}/
    {!render}; [ucqc top] scrapes one back with {!parse}; and
    [tools/obs_check.exe] holds a scraped exposition against the format
    rules with {!validate} in CI — so a renderer bug is caught by the
    in-tree checker, not by a production Prometheus.

    {b Naming.}  Metric names are sanitized ([[a-zA-Z0-9_:]], leading
    digit prefixed) and counters get the conventional [_total] suffix
    appended if missing.  Histograms use the native log₂ bucket layout
    shared with {!Telemetry} and {!Rolling}: cumulative [_bucket] lines
    at the populated power-of-two upper edges plus [+Inf], and the
    standard [_sum]/[_count] pair. *)

type kind = Counter | Gauge

(** Exposition builder.  Families render in first-registration order;
    repeated calls with the same name and different labels append
    samples to the existing family (the kind must match). *)
type t

val create : unit -> t

(** [sanitize name] maps an internal metric name (e.g.
    ["serve.cache.hit"]) to a legal Prometheus name
    (["serve_cache_hit"]). *)
val sanitize : string -> string

(** [scalar t ~kind name v] adds one counter or gauge sample.
    @raise Invalid_argument when [name] was already registered with a
    different kind. *)
val scalar :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  kind:kind ->
  string ->
  float ->
  unit

(** [log2_histogram t name ~counts ~sum] adds one histogram sample set
    from a 64-bucket log₂ count array (the {!Rolling}/{!Telemetry}
    layout). *)
val log2_histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  counts:int array ->
  sum:float ->
  unit

val render : t -> string

(** {1 Scraping side} *)

type sample = {
  sname : string;  (** full sample name, e.g. ["ucqc_serve_requests_total"] *)
  slabels : (string * string) list;
  svalue : float;
}

(** [parse text] extracts every sample line of an exposition, in order.
    [Error] describes the first malformed line. *)
val parse : string -> (sample list, string) result

(** [find samples ?labels name] is the value of the first sample named
    [name] whose label set contains every pair in [labels]. *)
val find : ?labels:(string * string) list -> sample list -> string -> float option

(** [validate text] holds [text] against the exposition rules: line
    grammar; at most one [HELP]/[TYPE] per family, [TYPE] preceding the
    family's samples; family lines contiguous; no duplicate
    (name, labels) sample; counter samples finite and non-negative; and
    for histogram families (per label set): [le] buckets sorted with
    non-decreasing cumulative counts, a [+Inf] bucket present and equal
    to [_count], and [_sum]/[_count] lines present.  Returns the number
    of samples checked, or a description of the first violation. *)
val validate : string -> (int, string) result
