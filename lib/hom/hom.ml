(** Homomorphisms between relational structures (Section 2.2).

    Answers to conjunctive queries are restrictions of homomorphisms, so
    this engine underlies every counting algorithm in the library.  It
    provides backtracking search with unary-consistency pruning (the
    reference oracle, and the tool for #minimality checks of Observation 17)
    and is complemented by the dynamic-programming counters in
    {!Treedec_count} and the database engine. *)

module Intset = Intset

(** Internal search state: the query structure [a] with its universe
    re-indexed densely, per-element candidate lists in [b], and the atoms
    grouped by the query elements they mention. *)
type search = {
  elems : int array; (* dense index -> element of A *)
  idx_of : (int, int) Hashtbl.t; (* element of A -> dense index *)
  candidates : int list array; (* dense index -> possible images *)
  (* atoms as (relation tuples of B, query tuple as dense indices) *)
  atoms : (Structure.tuple list * int list) array;
  atoms_of_elem : int list array; (* dense index -> atom indices *)
}

let prepare (a : Structure.t) (b : Structure.t) : search option =
  if not (Signature.subset (Structure.signature a) (Structure.signature b))
  then None
  else begin
    let elems = Array.of_list (Structure.universe a) in
    let idx_of = Hashtbl.create (Array.length elems) in
    Array.iteri (fun i v -> Hashtbl.add idx_of v i) elems;
    let atoms =
      List.concat_map
        (fun (name, ts) ->
          let tb = Structure.relation b name in
          List.map (fun t -> (tb, List.map (Hashtbl.find idx_of) t)) ts)
        (Structure.relations a)
    in
    let atoms = Array.of_list atoms in
    let n = Array.length elems in
    let atoms_of_elem = Array.make n [] in
    Array.iteri
      (fun ai (_, qt) ->
        List.iter
          (fun i ->
            if not (List.mem ai atoms_of_elem.(i)) then
              atoms_of_elem.(i) <- ai :: atoms_of_elem.(i))
          qt)
      atoms;
    (* Unary consistency: w is a candidate image of element i only if, for
       every atom mentioning i at position p, some tuple of the relation has
       w at position p. *)
    let universe_b = Structure.universe b in
    let candidates =
      Array.init n (fun i ->
          List.filter
            (fun w ->
              List.for_all
                (fun ai ->
                  let tb, qt = atoms.(ai) in
                  let positions =
                    List.concat
                      (List.mapi (fun p j -> if j = i then [ p ] else []) qt)
                  in
                  List.for_all
                    (fun p -> List.exists (fun tup -> List.nth tup p = w) tb)
                    positions)
                atoms_of_elem.(i))
            universe_b)
    in
    Some { elems; idx_of; candidates; atoms; atoms_of_elem }
  end

(** [iter_homs ?budget ?fixed a b f] calls [f] on every homomorphism from
    [a] to [b] extending the partial assignment [fixed] (pairs (element of
    A, element of B)); [f] receives the total mapping as an association
    list and returns [true] to continue the enumeration or [false] to
    stop.  A budget is ticked once per candidate extension tried. *)
let iter_homs ?(budget : Budget.t option) ?(fixed : (int * int) list = [])
    (a : Structure.t) (b : Structure.t) (f : (int * int) list -> bool) : unit =
  match prepare a b with
  | None -> ()
  | Some s ->
      let n = Array.length s.elems in
      let assignment = Array.make n (-1) in
      let fixed_ok = ref true in
      List.iter
        (fun (v, w) ->
          match Hashtbl.find_opt s.idx_of v with
          | None -> fixed_ok := false
          | Some i ->
              if List.mem w s.candidates.(i) then assignment.(i) <- w
              else fixed_ok := false)
        fixed;
      if !fixed_ok then begin
        (* Order the unassigned elements: connected-first (BFS from fixed
           and high-degree elements) to fail early. *)
        let order =
          let fixed_idx =
            List.filteri (fun i _ -> assignment.(i) >= 0)
              (Array.to_list (Array.init n (fun i -> i)))
          in
          let score i = List.length s.atoms_of_elem.(i) in
          let rest =
            List.filter (fun i -> assignment.(i) < 0)
              (List.sort
                 (fun i j -> compare (score j) (score i))
                 (Array.to_list (Array.init n (fun i -> i))))
          in
          fixed_idx @ rest
        in
        let order = Array.of_list (List.filter (fun i -> assignment.(i) < 0) order) in
        let m = Array.length order in
        let continue_ = ref true in
        (* check atoms that are fully assigned and involve element i *)
        let consistent i =
          List.for_all
            (fun ai ->
              let tb, qt = s.atoms.(ai) in
              if List.for_all (fun j -> assignment.(j) >= 0) qt then
                List.mem (List.map (fun j -> assignment.(j)) qt) tb
              else true)
            s.atoms_of_elem.(i)
        in
        (* Also validate atoms fully determined by [fixed]. *)
        let all_fixed_consistent =
          Array.for_all
            (fun (tb, qt) ->
              if List.for_all (fun j -> assignment.(j) >= 0) qt then
                List.mem (List.map (fun j -> assignment.(j)) qt) tb
              else true)
            s.atoms
        in
        let rec go k =
          if !continue_ then begin
            if k = m then begin
              let h =
                Array.to_list
                  (Array.mapi (fun i w -> (s.elems.(i), w)) assignment)
              in
              if not (f h) then continue_ := false
            end
            else begin
              let i = order.(k) in
              List.iter
                (fun w ->
                  if !continue_ then begin
                    Budget.tick_opt budget;
                    assignment.(i) <- w;
                    if consistent i then go (k + 1);
                    assignment.(i) <- -1
                  end)
                s.candidates.(i)
            end
          end
        in
        if all_fixed_consistent then go 0
      end

(** [exists ?budget ?fixed a b] decides whether a homomorphism extending
    [fixed] exists. *)
let exists ?(budget : Budget.t option) ?(fixed : (int * int) list = [])
    (a : Structure.t) (b : Structure.t) : bool =
  let found = ref false in
  iter_homs ?budget ~fixed a b (fun _ ->
      found := true;
      false);
  !found

(** [count ?budget ?fixed a b] counts homomorphisms extending [fixed] by
    exhaustive backtracking.  This is the reference oracle: correct for
    every input, exponential in |U(A)|. *)
let count ?(budget : Budget.t option) ?(fixed : (int * int) list = [])
    (a : Structure.t) (b : Structure.t) : int =
  let c = ref 0 in
  iter_homs ?budget ~fixed a b (fun _ ->
      incr c;
      true);
  !c

(** [find ?fixed a b] returns some homomorphism extending [fixed], if any.*)
let find ?(fixed : (int * int) list = []) (a : Structure.t) (b : Structure.t) :
    (int * int) list option =
  let res = ref None in
  iter_homs ~fixed a b (fun h ->
      res := Some h;
      false);
  !res

(** [find_non_surjective_endo a ~fixed_pointwise] searches for a
    homomorphism from [a] to itself that is the identity on
    [fixed_pointwise] and is not surjective.  By Observation 17, [(A, X)] is
    #minimal iff no such endomorphism exists. *)
let find_non_surjective_endo (a : Structure.t) ~(fixed_pointwise : int list) :
    (int * int) list option =
  let n = Structure.universe_size a in
  let fixed = List.map (fun x -> (x, x)) fixed_pointwise in
  let res = ref None in
  iter_homs ~fixed a a (fun h ->
      let image = List.sort_uniq compare (List.map snd h) in
      if List.length image < n then begin
        res := Some h;
        false
      end
      else true);
  !res

(** [verify ?fixed a b map] checks — in time linear in [A]'s encoding —
    that [map] is a homomorphism [A → B] extending [fixed]: single-valued,
    total on [U(A)], landing in [U(B)], consistent with [fixed], and
    mapping every tuple of every relation of [A] into the same relation
    of [B].  This is the fast path for witnesses captured by the
    analyzer: re-verification costs O(tuples), never a fresh search. *)
let verify ?(fixed : (int * int) list = []) (a : Structure.t)
    (b : Structure.t) (map : (int * int) list) : bool =
  let img = Hashtbl.create 16 in
  try
    List.iter
      (fun (x, y) ->
        match Hashtbl.find_opt img x with
        | Some y' -> if y' <> y then raise Exit
        | None -> Hashtbl.add img x y)
      map;
    List.iter
      (fun (x, y) -> if Hashtbl.find_opt img x <> Some y then raise Exit)
      fixed;
    let b_univ = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace b_univ v ()) (Structure.universe b);
    let apply x =
      match Hashtbl.find_opt img x with Some y -> y | None -> raise Exit
    in
    List.iter
      (fun x -> if not (Hashtbl.mem b_univ (apply x)) then raise Exit)
      (Structure.universe a);
    List.iter
      (fun (name, tuples) ->
        let btab = Hashtbl.create 64 in
        List.iter
          (fun t -> Hashtbl.replace btab t ())
          (Structure.relation b name);
        List.iter
          (fun t ->
            if not (Hashtbl.mem btab (List.map apply t)) then raise Exit)
          tuples)
      (Structure.relations a);
    true
  with Exit | Not_found | Invalid_argument _ -> false
