(** Homomorphisms between relational structures (Section 2.2): the
    semantics of conjunctive-query answers, found by backtracking with
    unary-consistency pruning. *)

(** [iter_homs ?budget ?fixed a b f] invokes [f] on every homomorphism
    [A → B] extending the partial assignment [fixed]; [f] returns [false]
    to stop the enumeration.  When a budget is supplied it is ticked once
    per candidate extension, so exhaustion surfaces as
    {!Budget.Exhausted} from inside the search. *)
val iter_homs :
  ?budget:Budget.t ->
  ?fixed:(int * int) list ->
  Structure.t ->
  Structure.t ->
  ((int * int) list -> bool) ->
  unit

(** [exists ?budget ?fixed a b] decides existence. *)
val exists :
  ?budget:Budget.t -> ?fixed:(int * int) list -> Structure.t -> Structure.t -> bool

(** [count ?budget ?fixed a b] counts by exhaustive backtracking — the
    reference oracle (exponential in [|U(A)|]). *)
val count :
  ?budget:Budget.t -> ?fixed:(int * int) list -> Structure.t -> Structure.t -> int

(** [find ?fixed a b] returns some homomorphism, if any. *)
val find :
  ?fixed:(int * int) list ->
  Structure.t ->
  Structure.t ->
  (int * int) list option

(** [find_non_surjective_endo a ~fixed_pointwise] searches for a
    non-surjective endomorphism of [a] fixing the listed elements
    pointwise — the Observation 17 test: [(A, X)] is #minimal iff none
    exists. *)
val find_non_surjective_endo :
  Structure.t -> fixed_pointwise:int list -> (int * int) list option

(** [verify ?fixed a b map] checks in O(|A| encoding) time that [map] is
    a homomorphism [A → B] extending [fixed] — the cheap re-validation
    path for witnesses captured during analysis.  Total: returns [false]
    on any malformed input (partial map, unknown relation, …). *)
val verify :
  ?fixed:(int * int) list ->
  Structure.t ->
  Structure.t ->
  (int * int) list ->
  bool
