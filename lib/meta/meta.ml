(** The META decision algorithm (Lemma 38 / Theorem 5) and the hereditary
    treewidth of a UCQ (Definition 57).

    META asks: can the answers to a given union of quantifier-free
    conjunctive queries be counted in time linear in the database?
    Assuming SETH or the Triangle Conjecture, the answer is yes iff every
    #minimal conjunctive query surviving in the CQ expansion with a
    non-zero coefficient is acyclic (Theorem 37 + complexity monotonicity,
    Corollary 29).  The algorithm below computes the expansion in
    [2^ℓ · poly(|Ψ|)] time and checks acyclicity of each support term —
    the paper's hardness results (Lemmas 51–53) show this exponential
    dependence on [ℓ] is essentially optimal. *)

type decision = {
  linear_time : bool;
      (** [true] iff counting answers to [Ψ] is linear-time possible
          (conditionally on SETH / the Triangle Conjecture) *)
  support : (Cq.t * int) list;
      (** the support of [c_Ψ]: #minimal representatives and their
          non-zero coefficients *)
  offending : Cq.t list;
      (** the cyclic support terms witnessing non-linearity (empty iff
          [linear_time]) *)
}

(** [decide ?budget psi] runs the META algorithm.
    @raise Invalid_argument if [psi] has quantified variables (META is
    defined for quantifier-free inputs; with quantifiers the meta problem
    is NP-hard even for single CQs, see Section 1.1). *)
let decide ?(budget : Budget.t option) ?(pool : Pool.t option) (psi : Ucq.t)
    : decision =
  if not (Ucq.is_quantifier_free psi) then
    invalid_arg "Meta.decide: input must be quantifier-free";
  Telemetry.with_span ?budget
    ~attrs:(fun () -> [ ("l", Telemetry.I (Ucq.length psi)) ])
    "meta.decide"
  @@ fun () ->
  let support =
    List.map
      (fun (t : Ucq.expansion_term) -> (t.representative, t.coefficient))
      (Ucq.support ?budget ?pool psi)
  in
  let offending =
    List.filter_map
      (fun (q, _) -> if Cq.is_acyclic q then None else Some q)
      support
  in
  { linear_time = offending = []; support; offending }

(** [hereditary_treewidth ?budget psi] is [hdtw(Ψ)] (Definition 57): the
    maximum treewidth over the support of [c_Ψ]. *)
let hereditary_treewidth ?(budget : Budget.t option) ?(pool : Pool.t option)
    (psi : Ucq.t) : int =
  Telemetry.with_span ?budget
    ~attrs:(fun () -> [ ("l", Telemetry.I (Ucq.length psi)) ])
    "meta.hdtw"
  @@ fun () ->
  List.fold_left
    (fun acc (t : Ucq.expansion_term) ->
      if t.coefficient = 0 then acc
      else max acc (Cq.treewidth ?budget ?pool t.representative))
    (-1)
    (Ucq.expansion ?budget ?pool psi)

(** [hereditary_treewidth_bounds psi] is the polynomial-per-term variant
    used by the approximation algorithm of Theorem 7: instead of exact
    treewidth it computes, for each support term, the minor-min-width lower
    bound and the min-fill/min-degree heuristic upper bound, returning the
    maxima [(lo, hi)] with [lo ≤ hdtw(Ψ) ≤ hi].  (The paper invokes the
    Feige–Hajiaghayi–Lee [O(sqrt(log k))]-approximation here; our heuristic
    pair plays that role and its gap is reported by the benchmarks.) *)
let hereditary_treewidth_bounds ?(budget : Budget.t option) (psi : Ucq.t) :
    int * int =
  List.fold_left
    (fun (lo, hi) (t : Ucq.expansion_term) ->
      if t.coefficient = 0 then (lo, hi)
      else begin
        let g, _ = Structure.gaifman (Cq.structure t.representative) in
        let lb = Treewidth.lower_bound g in
        let ub, _ = Treewidth.heuristic g in
        (max lo lb, max hi ub)
      end)
    (-1, -1)
    (Ucq.expansion ?budget psi)

(** Outcome of the gap problem META[c, d] (Definition 54), decided through
    hereditary treewidth: support terms of treewidth ≤ c are countable in
    [O(|D|^c)] (combine Lemma 26 with the [n^{tw+1}] dynamic program; for
    [c = 1], acyclicity gives the exact linear-time criterion), while a
    support term of treewidth > d is (conditionally) a witness that
    [O(|D|^d)] is impossible. *)
type gap_outcome = Within_c | Beyond_d | Between

(** [gap ?budget ~c ~d psi] classifies [psi] for META[c, d] ([1 ≤ c ≤ d]). *)
let gap ?(budget : Budget.t option) ?(pool : Pool.t option) ~(c : int)
    ~(d : int) (psi : Ucq.t) : gap_outcome =
  if c < 1 || d < c then invalid_arg "Meta.gap";
  if not (Ucq.is_quantifier_free psi) then
    invalid_arg "Meta.gap: input must be quantifier-free";
  if c = 1 then begin
    if (decide ?budget ?pool psi).linear_time then Within_c
    else begin
      let h = hereditary_treewidth ?budget ?pool psi in
      if h > d then Beyond_d else Between
    end
  end
  else begin
    let h = hereditary_treewidth ?budget ?pool psi in
    if h <= c then Within_c else if h > d then Beyond_d else Between
  end
