(** Structural analysis for the classifications of Theorems 1/2/3 (classes
    of UCQs) and Theorem 21 (single CQs). *)

type report = {
  combined_tw : int;  (** treewidth of [∧(Ψ)] — Theorems 2/3 *)
  combined_contract_tw : int;  (** treewidth of [contract(∧(Ψ))] *)
  gamma_max_tw : int;  (** max treewidth over the support ([Γ]) — Theorem 1 *)
  gamma_max_contract_tw : int;
  quantifier_free : bool;
  union_of_self_join_free : bool;  (** condition (III) *)
  num_quantified : int;  (** condition (II) data *)
  num_disjuncts : int;
}

(** [analyze ?with_gamma psi] computes the report; [with_gamma:false] skips
    the exponential Γ measures (reported as [-1]). *)
val analyze : ?with_gamma:bool -> ?pool:Pool.t -> Ucq.t -> report

type verdict = Fpt | W1_hard | Inconclusive

type family_report = { samples : (int * report) list; verdict : verdict }

(** [analyze_family ?with_gamma family params] samples a parameterised
    family (assumed deletion-closed by construction) and derives the
    Theorem 2/3 verdict from the growth of the combined measures and the
    side conditions. *)
val analyze_family :
  ?with_gamma:bool -> (int -> Ucq.t) -> int list -> family_report

(** {2 Single conjunctive queries (Theorem 21)} *)

type cq_report = {
  core_tw : int;  (** treewidth of the #core *)
  core_contract_tw : int;
  core_acyclic : bool;
  core_quantifier_free : bool;
  was_minimal : bool;  (** the input was already #minimal *)
}

(** [analyze_cq q] profiles a single CQ on its #core — the data of the
    Chen–Mengel classification (Theorem 21) and of the linear-time
    criterion (Theorems 4/37). *)
val analyze_cq : Cq.t -> cq_report
