(** The Weisfeiler–Leman dimension of quantifier-free UCQs on labelled
    graphs: [dim_WL(Ψ) = hdtw(Ψ)] (Theorems 7/8/58). *)

(** [check_labelled psi]: arity ≤ 2 and no [R(v, v)] atoms. *)
val check_labelled : Ucq.t -> bool

(** [exact ?budget psi] is [dim_WL(Ψ)] (Theorem 8 regime: exact per-term
    treewidth).
    @raise Invalid_argument for non-quantifier-free or non-labelled-graph
    inputs.
    @raise Budget.Exhausted when the resource budget runs out. *)
val exact : ?budget:Budget.t -> ?pool:Pool.t -> Ucq.t -> int

(** [approximate ?budget psi] is the Theorem 7 regime: polynomial-per-term
    bounds [(lo, hi)] with [lo ≤ dim_WL(Ψ) ≤ hi]. *)
val approximate : ?budget:Budget.t -> Ucq.t -> int * int

(** [at_most ?budget k psi] decides [dim_WL(Ψ) ≤ k]. *)
val at_most : ?budget:Budget.t -> ?pool:Pool.t -> int -> Ucq.t -> bool

(** [c6_and_2c3 sg] is the classical 1-WL-equivalent non-isomorphic pair
    (6-cycle vs two triangles) over the binary symbols of [sg]. *)
val c6_and_2c3 : Signature.t -> Structure.t * Structure.t

(** [invariance_check ?budget ~k psi] validates Definition 6 empirically on
    k-WL equivalent pairs; returns the number of pairs checked, or
    [Error (Internal _)] describing the first counterexample. *)
val invariance_check :
  ?budget:Budget.t -> k:int -> Ucq.t -> (int, Ucqc_error.t) result
