(** The META decision procedure (Lemma 38 / Theorem 5), hereditary
    treewidth (Definition 57), and the gap problem META[c,d]
    (Definition 54). *)

type decision = {
  linear_time : bool;
      (** counting answers is linear-time possible, conditionally on SETH /
          the Triangle Conjecture *)
  support : (Cq.t * int) list;
      (** the non-vanishing #minimal classes of the CQ expansion *)
  offending : Cq.t list;
      (** the cyclic support terms (empty iff [linear_time]) *)
}

(** [decide ?budget psi] runs META in [2^ℓ · poly(|Ψ|)] time.
    @raise Invalid_argument on inputs with quantified variables (META is
    defined for quantifier-free unions; with quantifiers the meta problem
    is NP-hard already for single CQs).
    @raise Budget.Exhausted when the resource budget runs out. *)
val decide : ?budget:Budget.t -> ?pool:Pool.t -> Ucq.t -> decision

(** [hereditary_treewidth ?budget psi] is [hdtw(Ψ)] (Definition 57): the
    maximum treewidth over the support of [c_Ψ].
    @raise Budget.Exhausted when the resource budget runs out. *)
val hereditary_treewidth : ?budget:Budget.t -> ?pool:Pool.t -> Ucq.t -> int

(** [hereditary_treewidth_bounds ?budget psi] is the polynomial-per-term
    approximation pair [(lo, hi)] with [lo ≤ hdtw(Ψ) ≤ hi] (the Theorem 7
    regime).  Only the expansion is budgeted; the per-term heuristics are
    polynomial. *)
val hereditary_treewidth_bounds : ?budget:Budget.t -> Ucq.t -> int * int

type gap_outcome = Within_c | Beyond_d | Between

(** [gap ?budget ~c ~d psi] classifies for META[c, d] (Definition 54),
    [1 ≤ c ≤ d], through acyclicity (c = 1) and hereditary treewidth. *)
val gap :
  ?budget:Budget.t -> ?pool:Pool.t -> c:int -> d:int -> Ucq.t -> gap_outcome
