(** Structural analysis of UCQs for the fixed-parameter-tractability
    classifications of Theorems 1, 2 and 3.

    The theorems classify *classes* of UCQs by whether certain treewidth
    measures are bounded.  For a single UCQ we report all the relevant
    measures; for a parameterised family we report them along the
    parameter, exposing the (un)boundedness trend the theorems are about:

    - [combined_tw]: treewidth of [∧(Ψ)] — the Theorem 2/3 criterion;
    - [combined_contract_tw]: treewidth of [contract(∧(Ψ))] — the second
      Theorem 3 criterion;
    - [gamma_max_tw] and [gamma_max_contract_tw]: maxima over the #minimal
      support of the CQ expansion — the (unwieldy) Theorem 1 criterion
      [Γ(C)];
    - the side conditions (I)–(III) of Theorem 3 that the family can be
      checked against. *)

type report = {
  combined_tw : int;
  combined_contract_tw : int;
  gamma_max_tw : int;
  gamma_max_contract_tw : int;
  quantifier_free : bool;
  union_of_self_join_free : bool;
  num_quantified : int;
  num_disjuncts : int;
}

(** [analyze ?with_gamma psi] computes the report; the Γ measures require
    the [2^ℓ] expansion and can be disabled for large unions (they are then
    reported as [-1]). *)
let analyze ?(with_gamma = true) ?(pool : Pool.t option) (psi : Ucq.t) :
    report =
  let combined = Ucq.combined_all psi in
  let gamma_max_tw, gamma_max_contract_tw =
    if with_gamma then
      List.fold_left
        (fun (tw, ctw) (t : Ucq.expansion_term) ->
          ( max tw (Cq.treewidth ?pool t.representative),
            max ctw (Cq.contract_treewidth t.representative) ))
        (-1, -1) (Ucq.support ?pool psi)
    else (-1, -1)
  in
  {
    combined_tw = Cq.treewidth ?pool combined;
    combined_contract_tw = Cq.contract_treewidth combined;
    gamma_max_tw;
    gamma_max_contract_tw;
    quantifier_free = Ucq.is_quantifier_free psi;
    union_of_self_join_free = Ucq.is_union_of_self_join_free psi;
    num_quantified = Ucq.num_quantified psi;
    num_disjuncts = Ucq.length psi;
  }

(** Verdict for a *family* of UCQs sampled at increasing parameters, in the
    spirit of Theorems 2/3 (the family is assumed closed under deletions —
    callers assert this from the construction): FPT when the combined
    measures stay bounded along the samples; W[1]-hard evidence when they
    grow (given the side conditions); [Inconclusive] when growth is present
    but a side condition fails, in which case only the Theorem 1 criterion
    (the Γ measures) applies. *)
type verdict = Fpt | W1_hard | Inconclusive

type family_report = { samples : (int * report) list; verdict : verdict }

(** [analyze_family ?with_gamma family params] samples [family] at each
    parameter and derives the verdict.  "Growth" is read off the samples:
    the last combined measure strictly exceeding the first. *)
let analyze_family ?(with_gamma = true) (family : int -> Ucq.t)
    (params : int list) : family_report =
  let samples = List.map (fun p -> (p, analyze ~with_gamma (family p))) params in
  let reports = List.map snd samples in
  let first = List.hd reports and last = List.hd (List.rev reports) in
  let combined_growing =
    last.combined_tw > first.combined_tw
    || last.combined_contract_tw > first.combined_contract_tw
  in
  let all_quantifier_free = List.for_all (fun r -> r.quantifier_free) reports in
  let quantified_bounded = last.num_quantified <= first.num_quantified in
  let verdict =
    if not combined_growing then Fpt
    else if all_quantifier_free then
      (* Theorem 2: for deletion-closed quantifier-free classes, growth of
         tw(∧C) alone gives W[1]-hardness — no side conditions needed *)
      W1_hard
    else if
      (* Theorem 3: (II) bounded quantified variables (approximated by
         comparing first and last sample) and (III) self-join-freeness;
         (I) holds by construction for the families we ship *)
      List.for_all (fun r -> r.union_of_self_join_free) reports
      && quantified_bounded
    then W1_hard
    else Inconclusive
  in
  { samples; verdict }

(* ------------------------------------------------------------------ *)
(* Single conjunctive queries (Theorem 21, Chen–Mengel)               *)
(* ------------------------------------------------------------------ *)

(** Structural profile of a single conjunctive query, the data on which the
    Chen–Mengel classification (Theorem 21) and the linear-time criterion
    (Theorems 4/37) operate: everything is computed on the #core. *)
type cq_report = {
  core_tw : int; (** treewidth of the #core *)
  core_contract_tw : int; (** treewidth of the #core's contract *)
  core_acyclic : bool;
  core_quantifier_free : bool;
  was_minimal : bool; (** the input was already #minimal *)
}

(** [analyze_cq q] computes the profile.  Reading it through Theorem 21:
    a class of CQs is polynomial-time countable iff both [core_tw] and
    [core_contract_tw] stay bounded along the class; through Theorem 4: a
    single quantifier-free CQ is linear-time countable iff it is acyclic
    (its own #core, quantifier-free CQs being #minimal). *)
let analyze_cq (q : Cq.t) : cq_report =
  let was_minimal = Cq.is_sharp_minimal q in
  let core = if was_minimal then q else Cq.sharp_core q in
  {
    core_tw = Cq.treewidth core;
    core_contract_tw = Cq.contract_treewidth core;
    core_acyclic = Cq.is_acyclic core;
    core_quantifier_free = Cq.is_quantifier_free core;
    was_minimal;
  }
