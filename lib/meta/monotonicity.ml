(** Complexity monotonicity (Theorem 28): recover every individual CQ
    answer count in the support of a UCQ's expansion from an oracle for the
    UCQ's own answer count.

    The algorithm queries the oracle on tensor products [D ⊗ B_i] for test
    structures [B_1, ..., B_r]; by Lemma 26 and the multiplicativity of
    answer counts over [⊗],

    [ans(Ψ → D ⊗ B_i) = Σ_j c_Ψ(A_j, X_j) · ans((A_j, X_j) → D) · ans((A_j, X_j) → B_i)],

    a linear system in the unknowns [c_j · ans((A_j, X_j) → D)].  The paper
    cites [20, 28] for the existence of test structures making the system
    non-singular; we search for them constructively: the candidate pool
    starts from the combined-query structures of [Ψ] themselves and is
    closed under tensor products until the matrix
    [M_{i,j} = ans((A_j, X_j) → B_i)] reaches full rank (by the
    Lovász-style linear independence of answer-count vectors of pairwise
    non-#equivalent #minimal queries, the pool always suffices in our
    instances; we fail loudly otherwise).  All arithmetic is exact
    ({!Rational} over {!Bigint}) because the tensor-product counts overflow
    native integers. *)

type recovered = {
  term : Cq.t; (** #minimal representative [(A_j, X_j)] *)
  coefficient : int; (** [c_Ψ(A_j, X_j)] *)
  count : Bigint.t; (** the recovered [ans((A_j, X_j) → D)] *)
}

exception No_basis

(** [select_basis terms pool] greedily picks structures from [pool] until
    the matrix [ans(term_j → B_i)] has full row rank [r = |terms|].
    Returns the chosen structures and the square matrix. *)
let select_basis (terms : Cq.t list) (pool : Structure.t list) :
    Structure.t list * Rational.t array array =
  Telemetry.with_span
    ~attrs:(fun () ->
      [
        ("terms", Telemetry.I (List.length terms));
        ("pool", Telemetry.I (List.length pool));
      ])
    "mono.select_basis"
  @@ fun () ->
  let r = List.length terms in
  let row b =
    Array.of_list
      (List.map (fun q -> Rational.of_bigint (Counting.count_big q b)) terms)
  in
  let rec grow chosen rows = function
    | [] -> raise No_basis
    | b :: rest ->
        let candidate_rows = rows @ [ row b ] in
        let m = Array.of_list candidate_rows in
        if Linalg.rank m > List.length rows then begin
          let chosen = chosen @ [ b ] in
          if List.length chosen = r then (chosen, m)
          else grow chosen candidate_rows rest
        end
        else grow chosen rows rest
  in
  if r = 0 then ([], [||]) else grow [] [] pool

(** [candidate_pool psi] builds the pool of test structures: all combined
    queries [∧(Ψ|_J)] of [Ψ] (as databases), closed once under pairwise
    tensor products. *)
let candidate_pool (psi : Ucq.t) : Structure.t list =
  let base =
    List.map
      (fun j -> Cq.structure (Ucq.combined psi j))
      (Combinat.nonempty_subsets (Ucq.length psi))
  in
  let squares = List.map (fun b -> fst (Structure.tensor b b)) base in
  let products =
    List.concat_map
      (fun b1 -> List.map (fun b2 -> fst (Structure.tensor b1 b2)) base)
      (Listx.take 4 base)
  in
  base @ squares @ products

(** [recover_with_oracle ~oracle psi d] runs the Theorem 28 algorithm: the
    oracle computes [B ↦ ans(Ψ → B)] (exactly); returns the recovered list
    of per-term counts on [d].
    @raise No_basis if the candidate pool cannot be completed to a
    non-singular system (does not happen for the supported inputs). *)
let oracle_calls_c = Telemetry.counter "mono.oracle_calls"

let recover_with_oracle ~(oracle : Structure.t -> Bigint.t) (psi : Ucq.t)
    (d : Structure.t) : recovered list =
  Telemetry.with_span
    ~attrs:(fun () -> [ ("l", Telemetry.I (Ucq.length psi)) ])
    "mono.recover"
  @@ fun () ->
  let support = Ucq.support psi in
  let terms = List.map (fun (t : Ucq.expansion_term) -> t.representative) support in
  let coeffs = List.map (fun (t : Ucq.expansion_term) -> t.coefficient) support in
  let basis, m = select_basis terms (candidate_pool psi) in
  let rhs =
    Array.of_list
      (List.map
         (fun b ->
           Telemetry.incr oracle_calls_c;
           let product, _ = Structure.tensor d b in
           Rational.of_bigint (oracle product))
         basis)
  in
  let solution =
    Telemetry.with_span "mono.solve" (fun () -> Linalg.solve m rhs)
  in
  match solution with
  | None -> raise No_basis
  | Some v ->
      List.mapi
        (fun j q ->
          let c = List.nth coeffs j in
          let count =
            Rational.to_bigint_exn
              (Rational.div v.(j) (Rational.of_int c))
          in
          { term = q; coefficient = c; count })
        terms

(** [recover psi d] instantiates the oracle with the library's own exact
    UCQ counter — demonstrating the reduction end to end (the oracle is
    treated as a black box: only [B ↦ ans(Ψ → B)] is used). *)
let recover (psi : Ucq.t) (d : Structure.t) : recovered list =
  recover_with_oracle ~oracle:(fun b -> Ucq.count_inclusion_exclusion_big psi b) psi d
