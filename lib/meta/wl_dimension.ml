(** The Weisfeiler–Leman dimension of quantifier-free UCQs on labelled
    graphs (Section 5, Theorems 7 and 8).

    By the Neuen / Lanzinger–Barceló characterisation (Theorem 58),
    [dim_WL(Ψ) = hdtw(Ψ)]: the WL-dimension equals the hereditary
    treewidth, i.e. the maximum treewidth over the support of the CQ
    expansion.  Computing the expansion takes [2^ℓ · poly(|Ψ|)] time; the
    per-term treewidth is computed exactly (Theorem 8 regime: [k] fixed,
    Bodlaender's algorithm — here exact branch-and-bound) or approximated
    in polynomial time (Theorem 7 regime, Feige–Hajiaghayi–Lee — here the
    minor-min-width / min-fill heuristic pair). *)

(** [check_labelled psi] verifies the Section 5 conventions: arity ≤ 2 and
    no atom of the form [R(v, v)] in any disjunct. *)
let check_labelled (psi : Ucq.t) : bool =
  Ucq.arity psi <= 2
  && List.for_all
       (fun a ->
         List.for_all
           (fun (_, ts) ->
             List.for_all
               (fun t -> match t with [ u; v ] -> u <> v | _ -> true)
               ts)
           (Structure.relations a))
       (Ucq.disjunct_structures psi)

(** [exact ?budget ?pool psi] is [dim_WL(Ψ) = hdtw(Ψ)] (Theorem 58).
    @raise Invalid_argument for inputs that are not quantifier-free UCQs on
    labelled graphs. *)
let exact ?(budget : Budget.t option) ?(pool : Pool.t option) (psi : Ucq.t)
    : int =
  if not (Ucq.is_quantifier_free psi) then
    invalid_arg "Wl_dimension.exact: input must be quantifier-free";
  if not (check_labelled psi) then
    invalid_arg "Wl_dimension.exact: input must be a UCQ on labelled graphs";
  Telemetry.with_span ?budget
    ~attrs:(fun () -> [ ("l", Telemetry.I (Ucq.length psi)) ])
    "wl_dim.exact"
    (fun () -> Meta.hereditary_treewidth ?budget ?pool psi)

(** [approximate ?budget psi] is the Theorem 7 algorithm: lower and upper
    bounds [(lo, hi)] with [lo ≤ dim_WL(Ψ) ≤ hi], each support term handled
    in polynomial time. *)
let approximate ?(budget : Budget.t option) (psi : Ucq.t) : int * int =
  if not (Ucq.is_quantifier_free psi) then
    invalid_arg "Wl_dimension.approximate: input must be quantifier-free";
  if not (check_labelled psi) then
    invalid_arg "Wl_dimension.approximate: input must be a UCQ on labelled graphs";
  Telemetry.with_span ?budget
    ~attrs:(fun () -> [ ("l", Telemetry.I (Ucq.length psi)) ])
    "wl_dim.approx"
    (fun () -> Meta.hereditary_treewidth_bounds ?budget psi)

(** [at_most ?budget k psi] decides [dim_WL(Ψ) ≤ k] (the Theorem 8
    problem). *)
let at_most ?(budget : Budget.t option) ?(pool : Pool.t option) (k : int)
    (psi : Ucq.t) : bool =
  exact ?budget ?pool psi <= k

(** [c6_and_2c3 sg] is the classical 1-WL-equivalent, non-isomorphic pair —
    the 6-cycle versus two disjoint triangles, both 2-regular — interpreted
    over the signature [sg] by giving every binary symbol the same symmetric
    edge set. *)
let c6_and_2c3 (sg : Signature.t) : Structure.t * Structure.t =
  let sym edges =
    List.concat_map (fun (u, v) -> [ [ u; v ]; [ v; u ] ]) edges
  in
  let c6 = sym [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ] in
  let c33 = sym [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ] in
  let build edges =
    Structure.make sg
      (List.init 6 (fun i -> i))
      (List.filter_map
         (fun (s : Signature.symbol) ->
           if s.arity = 2 then Some (s.name, edges) else None)
         sg)
  in
  (build c6, build c33)

(** [invariance_check ?budget ~k psi] empirically validates Definition 6
    against {!Wl.equivalent} on two families: (a) the 6-cycle vs two
    triangles (1-WL equivalent), (b) isomorphic random relabellings.  For
    every pair that is [k]-WL equivalent, the answer counts of [Ψ] must
    agree; returns the number of equivalent pairs checked, or a structured
    [Ucqc_error.Internal] describing the first counterexample found. *)
let invariance_check ?(budget : Budget.t option) ~(k : int) (psi : Ucq.t) :
    (int, Ucqc_error.t) result =
  let sg = Structure.signature (List.hd (Ucq.disjunct_structures psi)) in
  let checked = ref 0 in
  let check d1 d2 =
    if Wl.equivalent ?budget ~k d1 d2 then begin
      incr checked;
      let c1 = Ucq.count_via_expansion ?budget psi d1 in
      let c2 = Ucq.count_via_expansion ?budget psi d2 in
      if c1 <> c2 then
        Error
          (Ucqc_error.Internal
             (Printf.sprintf
                "Wl_dimension.invariance_check: %d-WL equivalent pair with \
                 different counts (%d vs %d)"
                k c1 c2))
      else Ok ()
    end
    else Ok ()
  in
  let d1, d2 = c6_and_2c3 sg in
  (* isomorphic pairs: relabel a random structure by an index reversal *)
  let iso_pairs =
    List.map
      (fun seed ->
        let d =
          Generators.random_labelled_graph ~seed ~labels:(Signature.size sg) 5 8
        in
        let retag d =
          Structure.make sg (Structure.universe d)
            (List.map2
               (fun (s : Signature.symbol) (_, ts) -> (s.name, ts))
               sg (Structure.relations d))
        in
        let d = retag d in
        let d' = Structure.rename d (fun v -> 4 - v) in
        (d, d'))
      [ 11; 23; 47 ]
  in
  let rec run = function
    | [] -> Ok !checked
    | (a, b) :: rest -> (
        match check a b with Ok () -> run rest | Error e -> Error e)
  in
  run ((d1, d2) :: iso_pairs)
