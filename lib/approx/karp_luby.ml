(** The Karp–Luby estimator for UCQ answer counts (Section 1.2 of the
    paper: "for approximate counting, unions can generally be handled using
    a standard trick of Karp and Luby").

    Sample space: pairs [(i, a)] with [a ∈ Ans(Ψ_i → D)]; its size
    [Σ_i ans(Ψ_i → D)] is computed exactly per disjunct (each disjunct is a
    single CQ, so the union-specific hardness does not arise).  A sample is
    a {e hit} when [i] is the smallest index whose disjunct contains [a];
    the number of hits in the sample space is exactly [ans(Ψ → D)], so the
    hit frequency times the space size is an unbiased estimator.  With
    [O(ℓ ε⁻² log δ⁻¹)] samples the estimate is an (ε, δ)-approximation —
    in contrast to exact counting, for which unions are genuinely harder
    than CQs (Theorem 5). *)

type estimate = {
  value : float; (** the estimated [ans(Ψ → D)] *)
  samples : int;
  space : int; (** [Σ_i ans(Ψ_i → D)] *)
  hits : int;
}

(** [membership_oracle q d] builds a fast test for [a ∈ Ans(q → D)]:
    quantifier-free disjuncts check their atoms against hashed database
    relations in O(#atoms) per query; quantified disjuncts hash the
    materialised answer set once. *)
let membership_oracle (q : Cq.t) (d : Structure.t) : (int * int) list -> bool =
  if Cq.is_quantifier_free q then begin
    let atoms =
      List.concat_map
        (fun (name, ts) ->
          let set = Hashtbl.create 64 in
          List.iter (fun t -> Hashtbl.replace set t ()) (Structure.relation d name);
          List.map (fun qt -> (qt, set)) ts)
        (Structure.relations (Cq.structure q))
    in
    fun answer ->
      List.for_all
        (fun (qt, set) ->
          Hashtbl.mem set (List.map (fun v -> List.assoc v answer) qt))
        atoms
  end
  else begin
    let free = Cq.free q in
    let set = Hashtbl.create 1024 in
    List.iter (fun a -> Hashtbl.replace set a ()) (Varelim.answers q d);
    fun answer -> Hashtbl.mem set (List.map (fun v -> List.assoc v answer) free)
  end

(** [estimate ?seed ?budget ~samples psi d] runs the estimator with a
    fixed sample budget.  A resource budget, when given, is ticked once
    per sample, so the sampling loop participates in deadline/step
    enforcement like every other engine.  A degenerate draw (an empty
    sample from a disjunct, which can only arise from a pathological
    sampler state) is retried under a deterministically rotated seed a
    bounded number of times rather than silently diluting the estimate. *)
let estimate ?(seed = 0xACE) ?(budget : Budget.t option) ~(samples : int)
    (psi : Ucq.t) (d : Structure.t) : estimate =
  let st = Random.State.make [| seed |] in
  let disjuncts = Ucq.disjuncts psi in
  let samplers = List.map (fun q -> Sampler.make q d) disjuncts in
  let counts = List.map Sampler.cardinality samplers in
  let space = Listx.sum counts in
  if space = 0 then { value = 0.; samples = 0; space = 0; hits = 0 }
  else begin
    let members =
      Array.of_list (List.map (fun q -> membership_oracle q d) disjuncts)
    in
    let samplers = Array.of_list samplers in
    let weighted =
      List.mapi (fun i c -> (i, c)) counts |> List.filter (fun (_, c) -> c > 0)
    in
    (* seed-rotation retry: draw from a fresh state derived from the base
       seed and the rotation round, keeping the run deterministic *)
    let max_rotations = 3 in
    let rec draw_rotated i rotation =
      let state =
        if rotation = 0 then st
        else Random.State.make [| seed lxor (0x9E3779B9 * rotation) |]
      in
      match Sampler.draw state samplers.(i) with
      | Some answer -> Some answer
      | None ->
          if rotation >= max_rotations then None
          else draw_rotated i (rotation + 1)
    in
    let hits = ref 0 in
    for _ = 1 to samples do
      Budget.tick_opt budget;
      let i = Sampler.weighted_choice st weighted in
      match draw_rotated i 0 with
      | None -> ()
      | Some answer ->
          (* is i the first disjunct containing this answer? *)
          let first = ref true in
          for j = 0 to i - 1 do
            if !first && members.(j) answer then first := false
          done;
          if !first then incr hits
    done;
    {
      value = float_of_int space *. float_of_int !hits /. float_of_int samples;
      samples;
      space;
      hits = !hits;
    }
  end

(** [fpras ?seed ~epsilon ~delta psi d] chooses the sample budget from the
    accuracy parameters: [⌈ 4 ℓ ln(2/δ) / ε² ⌉] samples give an (ε, δ)
    guarantee (standard Karp–Luby analysis: the hit probability is at least
    [1/ℓ]). *)
let fpras ?(seed = 0xACE) ?(budget : Budget.t option) ~(epsilon : float)
    ~(delta : float) (psi : Ucq.t) (d : Structure.t) : estimate =
  if epsilon <= 0. || delta <= 0. then invalid_arg "Karp_luby.fpras";
  let l = float_of_int (Ucq.length psi) in
  let samples =
    int_of_float (ceil (4. *. l *. log (2. /. delta) /. (epsilon *. epsilon)))
  in
  estimate ~seed ?budget ~samples psi d
