(** The Karp–Luby estimator for UCQ answer counts (Section 1.2 of the
    paper: "for approximate counting, unions can generally be handled using
    a standard trick of Karp and Luby").

    Sample space: pairs [(i, a)] with [a ∈ Ans(Ψ_i → D)]; its size
    [Σ_i ans(Ψ_i → D)] is computed exactly per disjunct (each disjunct is a
    single CQ, so the union-specific hardness does not arise).  A sample is
    a {e hit} when [i] is the smallest index whose disjunct contains [a];
    the number of hits in the sample space is exactly [ans(Ψ → D)], so the
    hit frequency times the space size is an unbiased estimator.  With
    [O(ℓ ε⁻² log δ⁻¹)] samples the estimate is an (ε, δ)-approximation —
    in contrast to exact counting, for which unions are genuinely harder
    than CQs (Theorem 5).

    Failed draws (a [None] after every seed rotation) are {e dropped}: they
    count in {!estimate.dropped}, not in the denominator.  Folding them
    into the denominator — as a plain [hits/samples] frequency would —
    silently biases the estimate low, because a dropped draw is not
    evidence of a miss. *)

type estimate = {
  value : float; (** the estimated [ans(Ψ → D)] *)
  samples : int; (** requested draws, including dropped ones *)
  space : int; (** [Σ_i ans(Ψ_i → D)] *)
  hits : int;
  dropped : int; (** draws that failed after every seed rotation *)
}

(** [membership_oracle q d] builds a fast test for [a ∈ Ans(q → D)]:
    quantifier-free disjuncts check their atoms against hashed database
    relations in O(#atoms) per query; quantified disjuncts hash the
    materialised answer set once.  The oracle is read-only after
    construction, so pool domains share it freely. *)
let membership_oracle (q : Cq.t) (d : Structure.t) : (int * int) list -> bool =
  if Cq.is_quantifier_free q then begin
    let atoms =
      List.concat_map
        (fun (name, ts) ->
          let set = Hashtbl.create 64 in
          List.iter (fun t -> Hashtbl.replace set t ()) (Structure.relation d name);
          List.map (fun qt -> (qt, set)) ts)
        (Structure.relations (Cq.structure q))
    in
    fun answer ->
      List.for_all
        (fun (qt, set) ->
          Hashtbl.mem set (List.map (fun v -> List.assoc v answer) qt))
        atoms
  end
  else begin
    let free = Cq.free q in
    let set = Hashtbl.create 1024 in
    List.iter (fun a -> Hashtbl.replace set a ()) (Varelim.answers q d);
    fun answer -> Hashtbl.mem set (List.map (fun v -> List.assoc v answer) free)
  end

(* seed-rotation retry bound for degenerate draws *)
let max_rotations = 3

let draws_c = Telemetry.counter "kl.draws"
let hits_c = Telemetry.counter "kl.hits"
let dropped_c = Telemetry.counter "kl.dropped"

(** One sampling loop: [n] draws with primary state [st]; [rotate r] is
    the fresh deterministic state for retry round [r ≥ 1].  Returns
    [(hits, dropped)]. *)
let sample_loop ?(budget : Budget.t option) ~(st : Random.State.t)
    ~(rotate : int -> Random.State.t) ~(weighted : (int * int) list)
    ~(draw : Random.State.t -> int -> (int * int) list option)
    ~(member : int -> (int * int) list -> bool) (n : int) : int * int =
  let hits = ref 0 in
  let dropped = ref 0 in
  for _ = 1 to n do
    Budget.tick_opt budget;
    let i = Sampler.weighted_choice st weighted in
    let rec attempt rotation =
      let state = if rotation = 0 then st else rotate rotation in
      match draw state i with
      | Some answer -> Some answer
      | None -> if rotation >= max_rotations then None else attempt (rotation + 1)
    in
    match attempt 0 with
    | None -> incr dropped
    | Some answer ->
        (* is i the first disjunct containing this answer? *)
        let first = ref true in
        for j = 0 to i - 1 do
          if !first && member j answer then first := false
        done;
        if !first then incr hits
  done;
  (!hits, !dropped)

(** [estimate_with ?seed ?budget ?pool ~samples ~counts ~draw ~member ()]
    is the estimator core over an abstract per-disjunct sampler: [counts]
    are the exact per-disjunct cardinalities, [draw st i] attempts one
    draw from disjunct [i], [member j a] tests [a ∈ Ans(Ψ_j → D)].  The
    public {!estimate} instantiates it with {!Sampler}s; tests instantiate
    it with fault-injecting samplers to exercise the dropped-draw
    accounting. *)
let estimate_with ?(seed = 0xACE) ?(budget : Budget.t option)
    ?(pool : Pool.t option) ~(samples : int) ~(counts : int list)
    ~(draw : Random.State.t -> int -> (int * int) list option)
    ~(member : int -> (int * int) list -> bool) () : estimate =
  let space = Listx.sum counts in
  if space = 0 then { value = 0.; samples = 0; space = 0; hits = 0; dropped = 0 }
  else begin
    Telemetry.with_span ?budget
      ~attrs:(fun () ->
        [ ("samples", Telemetry.I samples); ("space", Telemetry.I space) ])
      "kl.estimate"
    @@ fun () ->
    let weighted =
      List.mapi (fun i c -> (i, c)) counts |> List.filter (fun (_, c) -> c > 0)
    in
    let finish (hits : int) (dropped : int) : estimate =
      (* unbiased denominator: only draws that produced a sample carry
         information about the hit frequency *)
      Telemetry.add draws_c samples;
      Telemetry.add hits_c hits;
      Telemetry.add dropped_c dropped;
      let successes = samples - dropped in
      let value =
        if successes = 0 then 0.
        else
          float_of_int space *. float_of_int hits /. float_of_int successes
      in
      { value; samples; space; hits; dropped }
    in
    if not (Pool.is_parallel pool) then begin
      (* the pre-pool sequential path, bit-for-bit: one state drives
         choice and draws; retries rotate the base seed *)
      let st = Random.State.make [| seed |] in
      let rotate r = Random.State.make [| seed lxor (0x9E3779B9 * r) |] in
      let hits, dropped =
        sample_loop ?budget ~st ~rotate ~weighted ~draw ~member samples
      in
      finish hits dropped
    end
    else begin
      (* chunked: the sample budget splits into one chunk per worker, each
         with a state derived from (seed, chunk) only — a fixed
         (seed, jobs) pair is reproducible under any scheduling *)
      let p = Option.get pool in
      let jobs = Pool.jobs p in
      let run_chunk c =
        let n = (samples * (c + 1) / jobs) - (samples * c / jobs) in
        Telemetry.with_span
          ~attrs:(fun () ->
            [ ("chunk", Telemetry.I c); ("n", Telemetry.I n) ])
          "kl.chunk"
        @@ fun () ->
        let st = Random.State.make [| seed; c; 0x4B4C |] in
        let rotate r = Random.State.make [| seed; c; 0x4B4C; r |] in
        sample_loop ?budget ~st ~rotate ~weighted ~draw ~member n
      in
      let per_chunk = Pool.run p ?budget ~f:run_chunk jobs in
      let hits = Array.fold_left (fun acc (h, _) -> acc + h) 0 per_chunk in
      let dropped = Array.fold_left (fun acc (_, d) -> acc + d) 0 per_chunk in
      finish hits dropped
    end
  end

(** [estimate ?seed ?budget ?pool ~samples psi d] runs the estimator with
    a fixed sample budget.  A resource budget, when given, is ticked once
    per sample, so the sampling loop participates in deadline/step
    enforcement like every other engine.  A degenerate draw (an empty
    sample from a disjunct, which can only arise from a pathological
    sampler state) is retried under a deterministically rotated seed a
    bounded number of times, then dropped from the denominator. *)
let estimate ?(seed = 0xACE) ?(budget : Budget.t option)
    ?(pool : Pool.t option) ~(samples : int) (psi : Ucq.t) (d : Structure.t) :
    estimate =
  let disjuncts = Ucq.disjuncts psi in
  let samplers = Array.of_list (List.map (fun q -> Sampler.make q d) disjuncts) in
  let counts = Array.to_list (Array.map Sampler.cardinality samplers) in
  let members =
    Array.of_list (List.map (fun q -> membership_oracle q d) disjuncts)
  in
  estimate_with ~seed ?budget ?pool ~samples ~counts
    ~draw:(fun st i -> Sampler.draw st samplers.(i))
    ~member:(fun j answer -> members.(j) answer)
    ()

(** [fpras ?seed ~epsilon ~delta psi d] chooses the sample budget from the
    accuracy parameters: [⌈ 4 ℓ ln(2/δ) / ε² ⌉] samples give an (ε, δ)
    guarantee (standard Karp–Luby analysis: the hit probability is at least
    [1/ℓ]). *)
let fpras ?(seed = 0xACE) ?(budget : Budget.t option) ?(pool : Pool.t option)
    ~(epsilon : float) ~(delta : float) (psi : Ucq.t) (d : Structure.t) :
    estimate =
  if epsilon <= 0. || delta <= 0. then invalid_arg "Karp_luby.fpras";
  let l = float_of_int (Ucq.length psi) in
  let samples =
    int_of_float (ceil (4. *. l *. log (2. /. delta) /. (epsilon *. epsilon)))
  in
  estimate ~seed ?budget ?pool ~samples psi d
