(** The Karp–Luby estimator for UCQ answer counts (Section 1.2): exact
    per-disjunct counting and sampling, with the union handled by sampling
    — approximation side-steps the union-specific hardness of Theorem 5. *)

type estimate = {
  value : float;  (** the estimated [ans(Ψ → D)] *)
  samples : int;  (** requested draws, including dropped ones *)
  space : int;  (** [Σ_i ans(Ψ_i → D)] *)
  hits : int;
  dropped : int;
      (** draws that failed after every seed rotation; excluded from the
          estimator's denominator — only successful draws carry
          information about the hit frequency *)
}

(** [estimate ?seed ?budget ?pool ~samples psi d] runs the estimator with
    a fixed sample budget; unbiased, with relative error
    [O(sqrt(ℓ / samples))].  A resource budget is ticked once per sample;
    degenerate (empty) draws are retried under deterministically rotated
    seeds a bounded number of times, then dropped (counted in
    {!estimate.dropped}, not the denominator).  With a parallel [?pool]
    the sample budget is partitioned into per-worker chunks whose random
    states derive from [(seed, chunk)] alone, so a fixed [(seed, jobs)]
    pair reproduces the estimate exactly under any scheduling; [jobs = 1]
    (or no pool) is the original single-state loop, bit-for-bit.
    @raise Budget.Exhausted when the resource budget runs out mid-loop. *)
val estimate :
  ?seed:int ->
  ?budget:Budget.t ->
  ?pool:Pool.t ->
  samples:int ->
  Ucq.t ->
  Structure.t ->
  estimate

(** [estimate_with ?seed ?budget ?pool ~samples ~counts ~draw ~member ()]
    is the estimator core over an abstract sampler: [counts] lists the
    exact per-disjunct cardinalities, [draw st i] attempts one draw from
    disjunct [i] ([None] = degenerate draw, retried then dropped), and
    [member j a] tests [a ∈ Ans(Ψ_j → D)].  {!estimate} instantiates it
    with {!Sampler}s; exposed so tests can inject failing samplers and
    check the dropped-draw accounting. *)
val estimate_with :
  ?seed:int ->
  ?budget:Budget.t ->
  ?pool:Pool.t ->
  samples:int ->
  counts:int list ->
  draw:(Random.State.t -> int -> (int * int) list option) ->
  member:(int -> (int * int) list -> bool) ->
  unit ->
  estimate

(** [fpras ?seed ?budget ?pool ~epsilon ~delta psi d] derives the sample
    budget [⌈4 ℓ ln(2/δ) / ε²⌉] for an (ε, δ)-guarantee.
    @raise Invalid_argument for non-positive parameters. *)
val fpras :
  ?seed:int ->
  ?budget:Budget.t ->
  ?pool:Pool.t ->
  epsilon:float ->
  delta:float ->
  Ucq.t ->
  Structure.t ->
  estimate
