(** The Karp–Luby estimator for UCQ answer counts (Section 1.2): exact
    per-disjunct counting and sampling, with the union handled by sampling
    — approximation side-steps the union-specific hardness of Theorem 5. *)

type estimate = {
  value : float;  (** the estimated [ans(Ψ → D)] *)
  samples : int;
  space : int;  (** [Σ_i ans(Ψ_i → D)] *)
  hits : int;
}

(** [estimate ?seed ?budget ~samples psi d] runs the estimator with a
    fixed sample budget; unbiased, with relative error
    [O(sqrt(ℓ / samples))].  A resource budget is ticked once per sample;
    degenerate (empty) draws are retried under deterministically rotated
    seeds a bounded number of times.
    @raise Budget.Exhausted when the resource budget runs out mid-loop. *)
val estimate :
  ?seed:int -> ?budget:Budget.t -> samples:int -> Ucq.t -> Structure.t -> estimate

(** [fpras ?seed ?budget ~epsilon ~delta psi d] derives the sample budget
    [⌈4 ℓ ln(2/δ) / ε²⌉] for an (ε, δ)-guarantee.
    @raise Invalid_argument for non-positive parameters. *)
val fpras :
  ?seed:int ->
  ?budget:Budget.t ->
  epsilon:float ->
  delta:float ->
  Ucq.t ->
  Structure.t ->
  estimate
