(** Wire protocol: request parsing and response rendering.  See the
    interface for the shape.  Everything here is pure and total — the
    fuzzer drives {!parse_request} with the parser crash corpus and raw
    random bytes. *)

type count_method = Expansion | Inclusion_exclusion | Naive

type op =
  | Ping
  | Count of {
      query : string;
      meth : count_method;
      seed : int;
      max_steps : int option;
      timeout_ms : float option;
      no_fallback : bool;
    }
  | Classify of { query : string }
  | Check of { query : string }
  | Stats
  | Insert of { fact : string }
  | Delete of { fact : string }
  | Apply of { deltas : string list }

type request = { id : Trace_json.t option; op : op }

let op_label : op -> string = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Count _ -> "count"
  | Classify _ -> "classify"
  | Check _ -> "check"
  | Insert _ -> "insert"
  | Delete _ -> "delete"
  | Apply _ -> "apply"

type req_error =
  | Bad_json of string
  | Bad_request of string
  | Frame_too_large of int

let req_error_message = function
  | Bad_json msg -> Printf.sprintf "malformed JSON frame: %s" msg
  | Bad_request msg -> Printf.sprintf "invalid request: %s" msg
  | Frame_too_large limit ->
      Printf.sprintf "frame exceeds the %d-byte limit" limit

(* ------------------------------------------------------------------ *)
(* Request parsing                                                    *)
(* ------------------------------------------------------------------ *)

(* Accept ids that are JSON scalars only: echoing a client-chosen nested
   object back verbatim would let one request grow every response. *)
let valid_id : Trace_json.t -> bool = function
  | Trace_json.Str _ | Trace_json.Num _ | Trace_json.Bool _ | Trace_json.Null
    ->
      true
  | Trace_json.Arr _ | Trace_json.Obj _ -> false

let field (obj : (string * Trace_json.t) list) (k : string) :
    Trace_json.t option =
  List.assoc_opt k obj

let str_field obj k : (string option, string) result =
  match field obj k with
  | None -> Ok None
  | Some (Trace_json.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)

let int_field obj k : (int option, string) result =
  match field obj k with
  | None -> Ok None
  | Some (Trace_json.Num f) when Float.is_integer f && Float.abs f < 1e15 ->
      Ok (Some (int_of_float f))
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" k)

let num_field obj k : (float option, string) result =
  match field obj k with
  | None -> Ok None
  | Some (Trace_json.Num f) -> Ok (Some f)
  | Some _ -> Error (Printf.sprintf "field %S must be a number" k)

let bool_field obj k : (bool option, string) result =
  match field obj k with
  | None -> Ok None
  | Some (Trace_json.Bool b) -> Ok (Some b)
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" k)

let method_of_string = function
  | "expansion" -> Ok Expansion
  | "ie" | "inclusion-exclusion" -> Ok Inclusion_exclusion
  | "naive" -> Ok Naive
  | s ->
      Error
        (Printf.sprintf
           "unknown method %S (expected 'expansion', 'ie' or 'naive')" s)

let ( let* ) = Result.bind

let require_query obj : (string, string) result =
  match str_field obj "query" with
  | Error e -> Error e
  | Ok None -> Error "missing required field \"query\""
  | Ok (Some q) -> Ok q

let parse_op (obj : (string * Trace_json.t) list) : (op, string) result =
  match str_field obj "op" with
  | Error e -> Error e
  | Ok None -> Error "missing required field \"op\""
  | Ok (Some op) -> (
      match op with
      | "ping" -> Ok Ping
      | "stats" -> Ok Stats
      | "classify" ->
          let* query = require_query obj in
          Ok (Classify { query })
      | "check" ->
          let* query = require_query obj in
          Ok (Check { query })
      | "count" ->
          let* query = require_query obj in
          let* meth =
            match str_field obj "method" with
            | Error e -> Error e
            | Ok None -> Ok Expansion
            | Ok (Some s) -> method_of_string s
          in
          let* seed = int_field obj "seed" in
          let* max_steps = int_field obj "max_steps" in
          let* timeout_ms = num_field obj "timeout_ms" in
          let* no_fallback = bool_field obj "no_fallback" in
          let* () =
            match max_steps with
            | Some n when n < 0 -> Error "field \"max_steps\" must be >= 0"
            | _ -> Ok ()
          in
          let* () =
            match timeout_ms with
            | Some t when t < 0. -> Error "field \"timeout_ms\" must be >= 0"
            | _ -> Ok ()
          in
          Ok
            (Count
               {
                 query;
                 meth;
                 seed = Option.value seed ~default:1;
                 max_steps;
                 timeout_ms;
                 no_fallback = Option.value no_fallback ~default:false;
               })
      | "insert" | "delete" -> (
          match str_field obj "fact" with
          | Error e -> Error e
          | Ok None -> Error "missing required field \"fact\""
          | Ok (Some fact) ->
              Ok (if op = "insert" then Insert { fact } else Delete { fact }))
      | "apply" -> (
          match field obj "deltas" with
          | None -> Error "missing required field \"deltas\""
          | Some (Trace_json.Arr items) ->
              let rec loop acc = function
                | [] -> Ok (Apply { deltas = List.rev acc })
                | Trace_json.Str d :: rest -> loop (d :: acc) rest
                | _ :: _ ->
                    Error "field \"deltas\" must be an array of strings"
              in
              loop [] items
          | Some _ -> Error "field \"deltas\" must be an array")
      | other -> Error (Printf.sprintf "unknown op %S" other))

let parse_request (line : string) : (request, req_error) result =
  match Trace_json.parse line with
  | exception Failure msg -> Error (Bad_json msg)
  | exception _ -> Error (Bad_json "unparseable frame")
  | Trace_json.Obj obj -> (
      match field obj "id" with
      | Some v when not (valid_id v) ->
          Error (Bad_request "field \"id\" must be a JSON scalar")
      | id -> (
          match parse_op obj with
          | Ok op -> Ok { id; op }
          | Error msg -> Error (Bad_request msg)))
  | _ -> Error (Bad_request "request frame must be a JSON object")

(* ------------------------------------------------------------------ *)
(* Responses                                                          *)
(* ------------------------------------------------------------------ *)

type status = Ok_ | Degraded | Error_ | Overloaded | Shutting_down

let status_to_string = function
  | Ok_ -> "ok"
  | Degraded -> "degraded"
  | Error_ -> "error"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"

(* 0/2 mirror the CLI success codes; shed and draining responses use
   sysexits EX_TEMPFAIL — "try again later" is exactly their meaning. *)
let status_code = function
  | Ok_ -> 0
  | Degraded -> 2
  | Error_ -> 70
  | Overloaded | Shutting_down -> 75

type response = {
  rid : Trace_json.t option;
  rstatus : status;
  rcode : int;
  body : (string * Trace_json.t) list;
}

let make_response ?id ?code (rstatus : status)
    (body : (string * Trace_json.t) list) : response =
  {
    rid = id;
    rstatus;
    rcode = Option.value code ~default:(status_code rstatus);
    body;
  }

let error_response ?id ~(kind : string) ~(code : int) (msg : string) :
    response =
  make_response ?id ~code Error_
    [
      ( "error",
        Trace_json.Obj
          [
            ("kind", Trace_json.Str kind); ("message", Trace_json.Str msg);
          ] );
    ]

let of_req_error ?id (e : req_error) : response =
  let kind =
    match e with
    | Bad_json _ | Bad_request _ -> "invalid_request"
    | Frame_too_large _ -> "frame_too_large"
  in
  error_response ?id ~kind ~code:64 (req_error_message e)

let of_ucqc_error ?id (e : Ucqc_error.t) : response =
  let kind =
    match e with
    | Ucqc_error.Parse_error _ -> "parse_error"
    | Ucqc_error.Arity_mismatch _ -> "arity_mismatch"
    | Ucqc_error.Budget_exhausted _ -> "budget_exhausted"
    | Ucqc_error.Unsupported _ -> "unsupported"
    | Ucqc_error.Internal _ -> "internal"
  in
  error_response ?id ~kind ~code:(Ucqc_error.exit_code e)
    (Ucqc_error.to_string e)

let to_string (r : response) : string =
  let fields =
    (match r.rid with None -> [] | Some id -> [ ("id", id) ])
    @ [
        ("status", Trace_json.Str (status_to_string r.rstatus));
        ("code", Trace_json.Num (float_of_int r.rcode));
      ]
    @ r.body
  in
  Trace_json.to_string (Trace_json.Obj fields) ^ "\n"
