(** Prepared-query LRU cache.  See the interface for the design.

    LRU is implemented with logical stamps and an O(capacity) eviction
    scan: eviction runs at most once per miss and capacities are small
    (hundreds), so a pointer-chasing intrusive list would buy nothing.
    Each entry carries at most [max_aliases] spellings in the text
    front-map, keeping the alias table proportional to the entry table. *)

type entry = {
  ucq : Ucq.t;
  env : Parse.query_env;
  intern_key : string;
  primary_text : string;
  mutable analysis : Analysis.report option;
  mutable classify : Classify.report option;
  mutable plan_cost : float option option;
  mutable optimized : Optimize.report option;
  mutable maint : Delta.state option;
  mutable hits : int;
}

type outcome =
  | Hit of entry
  | Interned of entry
  | Miss of entry
  | Invalid of Ucqc_error.t

let outcome_label = function
  | Hit _ -> "hit"
  | Interned _ -> "interned"
  | Miss _ -> "miss"
  | Invalid _ -> "invalid"

type node = {
  e : entry;
  mutable stamp : int;
  mutable aliases : string list; (* texts pointing here, newest first *)
}

type bad = { err : Ucqc_error.t; mutable bstamp : int }

type t = {
  capacity : int;
  mutable clock : int;
  nodes : (string, node) Hashtbl.t; (* intern_key -> node *)
  texts : (string, string) Hashtbl.t; (* text -> intern_key *)
  bads : (string, bad) Hashtbl.t; (* text -> cached failure *)
}

let max_aliases = 8

let create ~capacity () : t =
  {
    capacity = max 0 capacity;
    clock = 0;
    nodes = Hashtbl.create 64;
    texts = Hashtbl.create 64;
    bads = Hashtbl.create 16;
  }

let entries (t : t) : int = Hashtbl.length t.nodes

let iter (t : t) (f : entry -> unit) : unit =
  Hashtbl.iter (fun _ node -> f node.e) t.nodes
let invalids (t : t) : int = Hashtbl.length t.bads

let tick (t : t) : int =
  t.clock <- t.clock + 1;
  t.clock

(* Evict the least-recently-used binding of [tbl] by [stamp_of]. *)
let evict_lru (tbl : (string, 'a) Hashtbl.t) (stamp_of : 'a -> int)
    (on_evict : string -> 'a -> unit) : unit =
  let victim =
    Hashtbl.fold
      (fun k v acc ->
        match acc with
        | Some (_, best) when stamp_of best <= stamp_of v -> acc
        | _ -> Some (k, v))
      tbl None
  in
  match victim with
  | None -> ()
  | Some (k, v) ->
      on_evict k v;
      Hashtbl.remove tbl k

let find (t : t) (text : string) : outcome option =
  if t.capacity = 0 then None
  else
    match Hashtbl.find_opt t.texts text with
    | Some key -> (
        match Hashtbl.find_opt t.nodes key with
        | Some node ->
            node.stamp <- tick t;
            node.e.hits <- node.e.hits + 1;
            Some (Hit node.e)
        | None ->
            (* stale alias of an evicted entry — drop it and re-prepare *)
            Hashtbl.remove t.texts text;
            None)
    | None -> (
        match Hashtbl.find_opt t.bads text with
        | Some bad ->
            bad.bstamp <- tick t;
            Some (Invalid bad.err)
        | None -> None)

let admit (t : t) (text : string)
    (parsed : (Ucq.t * Parse.query_env, Ucqc_error.t) result) : outcome =
  match parsed with
  | Error err ->
      if t.capacity > 0 then begin
        if Hashtbl.length t.bads >= t.capacity then
          evict_lru t.bads (fun b -> b.bstamp) (fun _ _ -> ());
        Hashtbl.replace t.bads text { err; bstamp = tick t }
      end;
      Invalid err
  | Ok (ucq, env) -> (
      let intern_key = Pretty.ucq ucq in
      if t.capacity = 0 then
        Miss
          {
            ucq;
            env;
            intern_key;
            primary_text = text;
            analysis = None;
            classify = None;
            plan_cost = None;
            optimized = None;
            maint = None;
            hits = 0;
          }
      else
        match Hashtbl.find_opt t.nodes intern_key with
        | Some node ->
            (* same interned UCQ under a new spelling: share the entry *)
            node.stamp <- tick t;
            node.e.hits <- node.e.hits + 1;
            if List.length node.aliases < max_aliases then begin
              node.aliases <- text :: node.aliases;
              Hashtbl.replace t.texts text intern_key
            end;
            Interned node.e
        | None ->
            let entry =
              {
                ucq;
                env;
                intern_key;
                primary_text = text;
                analysis = None;
                classify = None;
                plan_cost = None;
                optimized = None;
                maint = None;
                hits = 0;
              }
            in
            if Hashtbl.length t.nodes >= t.capacity then
              evict_lru t.nodes
                (fun n -> n.stamp)
                (fun _ n ->
                  List.iter (fun a -> Hashtbl.remove t.texts a) n.aliases);
            Hashtbl.replace t.nodes intern_key
              { e = entry; stamp = tick t; aliases = [ text ] };
            Hashtbl.replace t.texts text intern_key;
            Miss entry)

let parse_total (text : string) :
    (Ucq.t * Parse.query_env, Ucqc_error.t) result =
  match Parse.ucq_result text with
  | r -> r
  | exception e ->
      (* the parser is exception-total through [ucq_result]; anything
         else is an internal bug, reported structurally, never a crash *)
      Error (Ucqc_error.Internal (Printexc.to_string e))

let lookup (t : t) (text : string) : outcome =
  match find t text with
  | Some o -> o
  | None -> admit t text (parse_total text)
