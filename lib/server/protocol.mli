(** The [ucqc serve] wire protocol: newline-delimited JSON.

    One request per line, one response line per request.  Evaluated ops
    ([count]/[classify]/[check]) are answered in request order per
    connection; inline ops ([ping]/[stats]) and protocol-error responses
    are answered immediately and may overtake queued work — match
    responses by [id], not by position.  Both sides are plain JSON
    objects; the framing (line splitting, size limits) lives in
    {!Framer}.

    {b Requests.}  [{"op": "count", "query": "(x) :- E(x, y)", "id": 1,
    "method": "expansion", "seed": 1, "max_steps": 100000,
    "timeout_ms": 2000, "no_fallback": false}].  [op] is one of [ping],
    [count], [classify], [check], [stats], [insert], [delete], [apply];
    [query] is the {!Parse} surface syntax and is required for
    [count]/[classify]/[check]; [id] is any scalar and is echoed
    verbatim in the response.  Budget fields are per-request
    {e requests}, capped by the server's own limits.

    {b Mutations.}  [insert]/[delete] take a ["fact"] in the [.facts]
    atom syntax; [apply] takes a ["deltas"] array of signed facts
    (["+E(1,2)"]).  Mutations run on the evaluator thread in request
    order against the fixed load-time universe and signature; each
    accepted change advances the database {e epoch} reported in
    responses.  An [apply] batch is validated in full before any of it
    is applied.

    {b Responses.}  Every response carries [status] (the exit-code
    equivalent of the one-shot CLI) and [code]:
    - ["ok"] (0) — exact result under ["result"]
    - ["degraded"] (2) — budget ran out, tagged fallback under ["result"]
    - ["error"] (64/65/70/124) — structured ["error"] object, request not
      answered
    - ["overloaded"] (75) — shed by admission control; ["retry_after_ms"]
      advises when to retry
    - ["shutting_down"] (75) — server is draining; reconnect later

    Parsing is total: {!parse_request} never raises and maps every
    malformed frame to a structured {!req_error}. *)

(** Counting method requested for [op = count] (mirrors the CLI
    [--method]). *)
type count_method = Expansion | Inclusion_exclusion | Naive

type op =
  | Ping
  | Count of {
      query : string;
      meth : count_method;
      seed : int;
      max_steps : int option;
      timeout_ms : float option;
      no_fallback : bool;
    }
  | Classify of { query : string }
  | Check of { query : string }
  | Stats
  | Insert of { fact : string }  (** [{"op":"insert","fact":"E(1,2)"}] *)
  | Delete of { fact : string }  (** [{"op":"delete","fact":"E(1,2)"}] *)
  | Apply of { deltas : string list }
      (** [{"op":"apply","deltas":["+E(1,2)","-R(3)"]}] — validated as a
          whole, applied atomically *)

type request = {
  id : Trace_json.t option;  (** echoed verbatim; [None] when absent *)
  op : op;
}

(** [op_label op] is the wire name of [op] (["ping"], ["count"], ...) —
    the label the server uses for telemetry attributes, per-op metrics
    and access-log lines, so all three agree with the request syntax. *)
val op_label : op -> string

(** Why a frame was rejected before evaluation. *)
type req_error =
  | Bad_json of string  (** not a JSON value *)
  | Bad_request of string  (** JSON, but not a valid request object *)
  | Frame_too_large of int  (** size limit from the {!Framer} *)

val req_error_message : req_error -> string

(** [parse_request line] parses one frame.  Total: never raises. *)
val parse_request : string -> (request, req_error) result

(** {2 Responses} *)

type status = Ok_ | Degraded | Error_ | Overloaded | Shutting_down

val status_to_string : status -> string

(** [status_code s] is the one-shot-CLI exit-code equivalent carried in
    the [code] field ([Error_] responses carry their own finer code). *)
val status_code : status -> int

(** A response under construction: [to_string] renders the single
    newline-terminated frame. *)
type response = {
  rid : Trace_json.t option;
  rstatus : status;
  rcode : int;
  body : (string * Trace_json.t) list;
      (** extra top-level fields ([result], [error], [cache], ...) *)
}

val make_response :
  ?id:Trace_json.t ->
  ?code:int ->
  status ->
  (string * Trace_json.t) list ->
  response

(** [error_response ?id ~kind ~code msg] is the uniform error frame:
    [{"status": "error", "code": code, "error": {"kind": kind,
    "message": msg}}]. *)
val error_response :
  ?id:Trace_json.t -> kind:string -> code:int -> string -> response

(** [of_req_error ?id e] maps a frame rejection to its error response
    (code 64, kind [invalid_request] / [frame_too_large]). *)
val of_req_error : ?id:Trace_json.t -> req_error -> response

(** [of_ucqc_error ?id e] maps an engine error to its response: the
    [kind] names the constructor, the [code] is
    {!Ucqc_error.exit_code}. *)
val of_ucqc_error : ?id:Trace_json.t -> Ucqc_error.t -> response

(** [to_string r] renders the frame, newline-terminated.  The result is
    always a single line: newlines inside strings are escaped by the
    JSON encoder. *)
val to_string : response -> string
