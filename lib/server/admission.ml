(** Bounded work queue with shedding.  See the interface.

    One mutex + one condition variable: offers never block (full = shed,
    by design), so only {!take} waits.  The service-time EWMA is stored
    in microseconds in an [int Atomic.t] so {!note_service_ms} and the
    retry-hint computation stay lock-free. *)

type 'a t = {
  depth_bound : int;
  q : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  ewma_service_us : int Atomic.t;
}

let create ~depth () =
  if depth < 1 then invalid_arg "Admission.create: depth must be positive";
  {
    depth_bound = depth;
    q = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
    ewma_service_us = Atomic.make 10_000 (* 10 ms prior *);
  }

type 'a offer_outcome = Accepted | Shed of { retry_after_ms : int } | Draining

let retry_hint (t : 'a t) : int =
  let per_request_ms = Atomic.get t.ewma_service_us / 1000 in
  (* time to drain a full queue, clamped: at least 10 ms so clients
     back off at all, at most 30 s so the hint stays actionable *)
  min 30_000 (max 10 (t.depth_bound * max 1 per_request_ms))

let offer (t : 'a t) (x : 'a) : 'a offer_outcome =
  Mutex.protect t.lock (fun () ->
      if t.closed then Draining
      else if Queue.length t.q >= t.depth_bound then
        Shed { retry_after_ms = retry_hint t }
      else begin
        Queue.push x t.q;
        Condition.signal t.nonempty;
        Accepted
      end)

let take (t : 'a t) : 'a option =
  Mutex.protect t.lock (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

let close (t : 'a t) : unit =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let discard_pending (t : 'a t) : 'a list =
  Mutex.protect t.lock (fun () ->
      let items = List.of_seq (Queue.to_seq t.q) in
      Queue.clear t.q;
      items)

let note_service_ms (t : 'a t) (ms : float) : unit =
  let us = int_of_float (Float.max 0. ms *. 1000.) in
  (* EWMA with alpha = 1/4; a CAS loop would be overkill for a hint *)
  let old = Atomic.get t.ewma_service_us in
  Atomic.set t.ewma_service_us (((3 * old) + us) / 4)

let depth (t : 'a t) : int =
  Mutex.protect t.lock (fun () -> Queue.length t.q)

let service_ewma_ms (t : 'a t) : float =
  float_of_int (Atomic.get t.ewma_service_us) /. 1000.
