(** Admission control: a bounded FIFO work queue with load shedding.

    Connection threads {!offer} work; the single evaluator thread
    {!take}s it.  The queue depth is a hard bound — when it is full the
    offer is {e shed} immediately with a retry hint instead of queueing
    unboundedly, so latency under overload stays bounded and the server
    never accumulates requests faster than it retires them.

    The retry hint is an estimate of when a slot will free up:
    [queue_depth × EWMA(service time)], clamped to a sane range.  The
    evaluator reports each request's service time through
    {!note_service_ms}.

    {!close} flips the queue into drain mode: further offers are
    {!Draining}, already-queued work is still {!take}n until the queue
    runs dry, then {!take} returns [None].  {!discard_pending} empties
    the queue during a forced (deadline-exceeded) drain, returning the
    dropped items so their connections can be answered. *)

type 'a t

(** [create ~depth ()] bounds the queue to [depth] outstanding items.
    @raise Invalid_argument when [depth < 1]. *)
val create : depth:int -> unit -> 'a t

type 'a offer_outcome =
  | Accepted
  | Shed of { retry_after_ms : int }
  | Draining

val offer : 'a t -> 'a -> 'a offer_outcome

(** [take t] blocks until an item is available ([Some]) or the queue is
    closed and empty ([None]). *)
val take : 'a t -> 'a option

(** [close t] stops admission; blocked {!take}s wake up once the backlog
    is drained. *)
val close : 'a t -> unit

(** [discard_pending t] atomically empties the backlog (oldest first). *)
val discard_pending : 'a t -> 'a list

(** [note_service_ms t ms] feeds the shedding estimator. *)
val note_service_ms : 'a t -> float -> unit

(** [depth t] is the current backlog length (racy snapshot, for gauges). *)
val depth : 'a t -> int

(** [service_ewma_ms t] is the shedding estimator's current per-request
    service-time estimate — exported as a gauge by the metrics
    endpoint so an operator can see what the retry hints are based on. *)
val service_ewma_ms : 'a t -> float
