(** Incremental newline-delimited framing with a hard size bound.

    A {!t} consumes arbitrary byte chunks (whatever [read(2)] returned)
    and yields complete frames — lines without their terminating
    ['\n'].  A frame that grows past [max_frame_bytes] without a newline
    is {e discarded to the next newline} and reported once as
    {!Oversized}: the connection survives, the protocol stays in sync,
    and memory stays bounded — the slowloris and oversized-frame defence
    in one place.

    Pure state machine, no I/O: the unit tests and the fuzzer drive it
    with adversarial chunkings directly. *)

type t

(** One yielded item. *)
type frame =
  | Frame of string  (** a complete line, ['\n'] stripped *)
  | Oversized of int  (** a discarded over-limit frame; carries the limit *)

(** [create ~max_frame_bytes ()] starts an empty framer.
    @raise Invalid_argument when [max_frame_bytes < 1]. *)
val create : max_frame_bytes:int -> unit -> t

(** [feed t buf ~off ~len] consumes a chunk and returns the frames it
    completed, in order.  A trailing ['\r'] is stripped (CRLF clients
    work unmodified). *)
val feed : t -> bytes -> off:int -> len:int -> frame list

(** [pending t] is the number of buffered bytes of the incomplete frame
    (0 right after a frame boundary). *)
val pending : t -> int

(** [eof t] reports a final unterminated frame, if any non-discarded
    bytes are buffered at connection end. *)
val eof : t -> frame option
