(** The prepared-query cache behind [ucqc serve].

    Parsing, static analysis, plan prediction and classification are
    deterministic functions of the query text, so a long-running server
    pays them once.  Entries are keyed two ways:

    - a {e text front-map} from the exact request bytes to its entry —
      a repeat of the same text skips even the parse;
    - an {e intern key} — the canonical {!Pretty.ucq} rendering of the
      interned {!Ucq.t} — so two texts that intern to the same UCQ
      (whitespace, comments, variable names) share one entry and its
      memoized artifacts.

    Capacity is enforced LRU over {e entries} (interned queries); a
    bounded number of text aliases rides along with each entry, so
    memory stays flat no matter how many distinct spellings arrive.
    Negative results (texts that fail to parse) are cached too, in their
    own equally-bounded table — a malformed query hammered in a loop
    must not cost a re-parse per hit.

    The lookup is split in two so the caller can meter the parse:
    {!find} is the no-parse fast path; on [None] the caller parses and
    {!admit}s the result.  Not thread-safe by design: only the server's
    single evaluator thread touches the cache (the same single-writer
    discipline that keeps the telemetry buffers race-free). *)

type entry = {
  ucq : Ucq.t;
  env : Parse.query_env;
  intern_key : string;  (** canonical rendering, the sharing key *)
  primary_text : string;  (** the spelling that created the entry *)
  mutable analysis : Analysis.report option;
      (** lint + plan report of [primary_text], memoized on demand *)
  mutable classify : Classify.report option;  (** memoized on demand *)
  mutable plan_cost : float option option;
      (** memoized {!Plan.try_cost} for drift tracking: [None] =
          not computed yet, [Some None] = prediction capped out.
          Predicted against the {e optimized} query when the optimizer
          is on — the query the evaluator actually runs *)
  mutable optimized : Optimize.report option;
      (** the count-preserving rewrite, computed once at prepare time;
          [identity] when optimization is disabled *)
  mutable maint : Delta.state option;
      (** the tiered incremental-counting state, built lazily at the
          first [count] of this entry.  The analysis artifacts above
          are epoch-independent; count memos live inside the state,
          keyed by the database epoch *)
  mutable hits : int;  (** lookups served from this entry *)
}

(** Result of a lookup: where the prepared artifacts came from. *)
type outcome =
  | Hit of entry  (** exact text seen before: no parse *)
  | Interned of entry
      (** new spelling of a known UCQ: parsed, artifacts shared *)
  | Miss of entry  (** first sighting: freshly prepared *)
  | Invalid of Ucqc_error.t  (** parse/intern failure (possibly cached) *)

val outcome_label : outcome -> string
(** ["hit" | "interned" | "miss" | "invalid"] — the [cache] field of a
    response. *)

type t

(** [create ~capacity ()] holds at most [capacity] prepared entries and
    as many cached failures ([capacity = 0] disables caching). *)
val create : capacity:int -> unit -> t

(** [find t text] is the parse-free fast path: [Some (Hit _)] or
    [Some (Invalid _)] when the exact text is known, [None] otherwise. *)
val find : t -> string -> outcome option

(** [admit t text parsed] records a parse result for a text {!find}
    missed and returns the outcome ({!Miss}, {!Interned}, or
    {!Invalid}).  With [capacity = 0] nothing is stored. *)
val admit :
  t ->
  string ->
  (Ucq.t * Parse.query_env, Ucqc_error.t) result ->
  outcome

(** [lookup t text] is [find] followed by a {!Parse.ucq_result} +
    [admit] on miss — the convenience the unit tests use.  Never
    raises. *)
val lookup : t -> string -> outcome

(** [iter t f] applies [f] to every prepared entry (evaluator thread
    only) — how an accepted update reaches every maintained state. *)
val iter : t -> (entry -> unit) -> unit

(** Current number of prepared entries / cached invalid texts. *)
val entries : t -> int

val invalids : t -> int
