(** The [ucqc serve] daemon.  See the interface for the architecture and
    failure model; the comments here cover the mechanics.

    Locking discipline (ordering, to stay deadlock-free):
    [stop_lock] > [conns_lock] > per-connection [wlock].  No code path
    takes them in the other direction, and nothing blocks while holding
    [wlock] except the bounded (send-timeout) response write.

    File-descriptor lifetime: a connection's fd is closed exactly once,
    by whichever party ([conn] reader thread, evaluator release, or the
    drain sequence) observes [reader_done && pending = 0] first — all
    under [wlock], so a closed descriptor number recycled by the kernel
    is never touched again through a stale [conn]. *)

type listen = Unix_socket of string | Tcp of { host : string; port : int }

type config = {
  listen : listen;
  jobs : int;
  queue_depth : int;
  max_frame_bytes : int;
  idle_timeout_s : float;
  request_timeout_s : float option;
  max_steps_cap : int option;
  cache_capacity : int;
  drain_deadline_s : float;
  max_connections : int;
  metrics_addr : (string * int) option;
  access_log : string option;
  slow_query_log : string option;
  slow_factor : float;
  optimize : bool;
}

let default_config ~listen ~jobs =
  {
    listen;
    jobs;
    queue_depth = 64;
    max_frame_bytes = 1 lsl 20;
    idle_timeout_s = 300.;
    request_timeout_s = Some 30.;
    max_steps_cap = None;
    cache_capacity = 256;
    drain_deadline_s = 5.;
    max_connections = 128;
    metrics_addr = None;
    access_log = None;
    slow_query_log = None;
    slow_factor = 8.;
    optimize = true;
  }

(* Poll tick for every blocking wait (accept select, read timeout): the
   worst-case latency from a stop request to every loop noticing it. *)
let tick_s = 0.25

(* A response write to a client that has stopped reading gives up after
   this long; the client is then treated as dead.  Bounds how long the
   evaluator can be held hostage by a slow reader. *)
let write_timeout_s = 5.0

(* [classify] runs the exact (unbudgeted) treewidth engine on the
   combined query; gate it by total variable count so serve mode cannot
   be wedged by one adversarial classify request.  Matches the CLI's
   treewidth size gate. *)
let classify_var_gate = 20

(* ------------------------------------------------------------------ *)
(* Telemetry counters (interned once; no-ops when telemetry is off)   *)
(* ------------------------------------------------------------------ *)

let c_connections = Telemetry.counter "serve.connections"
let c_requests = Telemetry.counter "serve.requests"
let c_ok = Telemetry.counter "serve.responses.ok"
let c_degraded = Telemetry.counter "serve.responses.degraded"
let c_errors = Telemetry.counter "serve.responses.error"
let c_shed = Telemetry.counter "serve.shed"
let c_malformed = Telemetry.counter "serve.frames.malformed"
let c_oversized = Telemetry.counter "serve.frames.oversized"
let c_cache_hit = Telemetry.counter "serve.cache.hit"
let c_cache_interned = Telemetry.counter "serve.cache.interned"
let c_cache_miss = Telemetry.counter "serve.cache.miss"
let c_cache_invalid = Telemetry.counter "serve.cache.invalid"
let c_idle_closed = Telemetry.counter "serve.idle_closed"
let c_discarded = Telemetry.counter "serve.discarded"
let c_slow = Telemetry.counter "serve.slow_queries"
let c_updates_applied = Telemetry.counter "serve.updates.applied"
let c_updates_noop = Telemetry.counter "serve.updates.noop"
let c_opt_queries = Telemetry.counter "serve.optimize.queries_rewritten"
let c_opt_disjuncts = Telemetry.counter "serve.optimize.disjuncts_removed"
let c_opt_atoms = Telemetry.counter "serve.optimize.atoms_removed"

(* predicted-cost delta of the most recent rewritten prepare: plan cost
   of the original minus the optimized query (positive = cheaper) *)
let g_opt_cost_delta = Telemetry.gauge "serve.optimize.predicted_cost_delta"

(* the session epoch, exported so a scrape can tell "no updates yet"
   from "updates applied" without a stats round-trip *)
let g_db_epoch = Telemetry.gauge "serve.db.epoch"

(* per-query-class request counters: the /metrics breakdown by op *)
let op_counters =
  List.map
    (fun op -> (op, Telemetry.counter ("serve.requests." ^ op)))
    [ "ping"; "stats"; "count"; "classify"; "check"; "insert"; "delete"; "apply" ]

let evaluated_ops = [ "count"; "classify"; "check"; "insert"; "delete"; "apply" ]

(* per-op latency histograms (lifetime; the rolling windows below keep
   the recent view) and the drift-ratio histogram: observed budget steps
   over predicted plan cost — log₂ buckets fit a ratio perfectly, 1.0
   lands in the middle of the range *)
let op_latency_histograms =
  List.map
    (fun op -> (op, Telemetry.histogram ("serve.latency_ms." ^ op)))
    evaluated_ops

let h_count_steps = Telemetry.histogram "serve.steps.count"
let h_drift = Telemetry.histogram "serve.drift_ratio"

(* A prediction that cannot finish within this cap is treated as "no
   prediction" rather than charged to the evaluator. *)
let plan_predict_cap = 200_000

(* Below this many observed steps a large drift ratio is noise (a tiny
   query mispredicted by 10x is still instant); no slow-log entry. *)
let slow_min_steps = 1024

(* ------------------------------------------------------------------ *)
(* State                                                              *)
(* ------------------------------------------------------------------ *)

(* The server's own stats live in atomics (the [stats] op must work with
   telemetry disabled); each bump also feeds the telemetry counter of
   the same name for [--metrics]. *)
type stats = {
  connections_total : int Atomic.t;
  connections_active : int Atomic.t;
  requests_total : int Atomic.t;
  responses_ok : int Atomic.t;
  responses_degraded : int Atomic.t;
  responses_error : int Atomic.t;
  shed : int Atomic.t;
  frames_malformed : int Atomic.t;
  frames_oversized : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_interned : int Atomic.t;
  cache_misses : int Atomic.t;
  cache_invalid : int Atomic.t;
  cache_entries : int Atomic.t;  (* gauge, maintained by the evaluator *)
  idle_closed : int Atomic.t;
  discarded : int Atomic.t;
  slow_queries : int Atomic.t;
  updates_applied : int Atomic.t;
  updates_noop : int Atomic.t;
}

let make_stats () =
  {
    connections_total = Atomic.make 0;
    connections_active = Atomic.make 0;
    requests_total = Atomic.make 0;
    responses_ok = Atomic.make 0;
    responses_degraded = Atomic.make 0;
    responses_error = Atomic.make 0;
    shed = Atomic.make 0;
    frames_malformed = Atomic.make 0;
    frames_oversized = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_interned = Atomic.make 0;
    cache_misses = Atomic.make 0;
    cache_invalid = Atomic.make 0;
    cache_entries = Atomic.make 0;
    idle_closed = Atomic.make 0;
    discarded = Atomic.make 0;
    slow_queries = Atomic.make 0;
    updates_applied = Atomic.make 0;
    updates_noop = Atomic.make 0;
  }

(* One coherent snapshot of the values only the evaluator may read
   consistently (pool registry + cache size), republished by the
   evaluator after every request.  The stats handler and the metrics
   gateway read the whole record through one [Atomic.get], so the pool
   counters can never be torn against the cache counters the way the
   old per-field reads could. *)
type eval_snapshot = {
  es_pool_spawned : int;
  es_pool_idle : int;
  es_cache_entries : int;
  es_cache_invalids : int;
  es_db_epoch : int;
  es_db_tuples : int;
  (* maintained states by effective tier, over the live cache entries *)
  es_maint_a : int;
  es_maint_b : int;
  es_maint_c : int;
}

let bump (a : int Atomic.t) (c : Telemetry.counter) : unit =
  Atomic.incr a;
  Telemetry.incr c

type conn = {
  cid : int;
  fd : Unix.file_descr;
  wlock : Mutex.t;
  mutable fd_open : bool;  (* guarded by wlock *)
  mutable reader_done : bool;  (* guarded by wlock *)
  mutable pending : int;  (* responses the evaluator still owes; wlock *)
}

type work = {
  wid : Trace_json.t option;
  wrid : string;  (* generated request id, threaded end to end *)
  wop : Protocol.op;
  wconn : conn;
  enqueued_at : float;
}

type t = {
  cfg : config;
  (* the mutable database session; only the evaluator thread may apply
     updates or read the structure after [start] returns *)
  ddb : Delta.db;
  db_elems : int;
  db_tuples : int;  (* load-time figure, kept as the plan baseline *)
  pool : Pool.t;
  listen_fd : Unix.file_descr;
  queue : work Admission.t;
  stats : stats;
  eval_snap : eval_snapshot Atomic.t;
  reqids : Reqid.gen;
  (* rolling latency windows, by op plus an "all" aggregate; written by
     the evaluator, read by the gateway — lock-free on both sides *)
  rolling_all : Rolling.t;
  rolling_by_op : (string * Rolling.t) list;
  access_oc : out_channel option;  (* evaluator thread only *)
  slow_oc : out_channel option;  (* evaluator thread only *)
  started_at : float;
  stop_requested_flag : bool Atomic.t;
  stopping : bool Atomic.t;
  stop_signal : int Atomic.t;  (* 0 = none *)
  evaluator_done : bool Atomic.t;
  current_budget : Budget.t option Atomic.t;
  next_cid : int Atomic.t;
  conns : (int, conn) Hashtbl.t;  (* guarded by conns_lock *)
  conns_lock : Mutex.t;
  mutable threads : Thread.t list;  (* conn threads; conns_lock *)
  mutable acceptor : Thread.t option;
  mutable evaluator : Thread.t option;
  mutable gateway : Obs_gateway.t option;
  stop_lock : Mutex.t;
  mutable stopped : bool;  (* guarded by stop_lock *)
  mutable discarded_total : int;  (* guarded by stop_lock *)
}

let draining (t : t) : bool =
  Atomic.get t.stop_requested_flag || Atomic.get t.stopping

(* ------------------------------------------------------------------ *)
(* Response plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let num (i : int) = Trace_json.Num (float_of_int i)
let fnum (f : float) = Trace_json.Num f

(* Write one response frame.  Best-effort: a dead or stalled client
   (EPIPE, send timeout) silently loses the response — its connection is
   torn down by the reader side shortly after. *)
let send (c : conn) (resp : Protocol.response) : unit =
  let line = Protocol.to_string resp in
  Mutex.protect c.wlock (fun () ->
      if c.fd_open then
        try
          let len = String.length line in
          let pos = ref 0 in
          while !pos < len do
            let n = Unix.write_substring c.fd line !pos (len - !pos) in
            if n <= 0 then raise Exit;
            pos := !pos + n
          done
        with _ -> ())

(* Close the fd exactly once, when both the reader is done and no
   evaluator response is outstanding. *)
let close_if_done (t : t) (c : conn) : unit =
  let close_now =
    Mutex.protect c.wlock (fun () ->
        if c.fd_open && c.reader_done && c.pending = 0 then begin
          c.fd_open <- false;
          true
        end
        else false)
  in
  if close_now then begin
    (try Unix.close c.fd with _ -> ());
    Mutex.protect t.conns_lock (fun () -> Hashtbl.remove t.conns c.cid)
  end

let release (t : t) (c : conn) : unit =
  Mutex.protect c.wlock (fun () -> c.pending <- c.pending - 1);
  close_if_done t c

let shutting_down_response ?id () : Protocol.response =
  Protocol.make_response ?id Protocol.Shutting_down
    [ ("message", Trace_json.Str "server is draining; reconnect later") ]

let count_response_status (t : t) (r : Protocol.response) : unit =
  match r.Protocol.rstatus with
  | Protocol.Ok_ -> bump t.stats.responses_ok c_ok
  | Protocol.Degraded -> bump t.stats.responses_degraded c_degraded
  | Protocol.Error_ -> bump t.stats.responses_error c_errors
  | Protocol.Overloaded | Protocol.Shutting_down -> ()

(* ------------------------------------------------------------------ *)
(* Inline ops (answered on the connection thread)                     *)
(* ------------------------------------------------------------------ *)

let uptime_ms (t : t) : float = (Unix.gettimeofday () -. t.started_at) *. 1000.

let pong (t : t) ?id () : Protocol.response =
  (* identity fields so a probe can assert what it is talking to;
     [Buildid.git_commit] is forced at [start], so this never shells
     out on the connection thread *)
  Protocol.make_response ?id Protocol.Ok_
    [
      ("pong", Trace_json.Bool true);
      ("uptime_ms", fnum (uptime_ms t));
      ("uptime_s", fnum ((Unix.gettimeofday () -. t.started_at)));
      ("version", Trace_json.Str Buildid.version);
      ("git_commit", Trace_json.Str (Buildid.git_commit ()));
    ]

let stats_response (t : t) ?id () : Protocol.response =
  let s = t.stats in
  let g a = num (Atomic.get a) in
  (* pool and cache figures come from the one coherent evaluator-thread
     snapshot, not from live [Pool.*] reads racing the cache gauges *)
  let snap = Atomic.get t.eval_snap in
  Protocol.make_response ?id Protocol.Ok_
    [
      ( "result",
        Trace_json.Obj
          [
            ("uptime_ms", fnum (uptime_ms t));
            ("jobs", num (Pool.jobs t.pool));
            (* resident-pool health: a steady server holds the spawn
               count constant while requests are served — if it grows
               per request, domain reuse is broken *)
            ("pool_domains_spawned", num snap.es_pool_spawned);
            ("pool_domains_idle", num snap.es_pool_idle);
            ("connections_total", g s.connections_total);
            ("connections_active", g s.connections_active);
            ("requests_total", g s.requests_total);
            ("responses_ok", g s.responses_ok);
            ("responses_degraded", g s.responses_degraded);
            ("responses_error", g s.responses_error);
            ("shed", g s.shed);
            ("frames_malformed", g s.frames_malformed);
            ("frames_oversized", g s.frames_oversized);
            ("idle_closed", g s.idle_closed);
            ("discarded", g s.discarded);
            ("queue_depth", num (Admission.depth t.queue));
            ( "cache",
              Trace_json.Obj
                [
                  ("hits", g s.cache_hits);
                  ("interned", g s.cache_interned);
                  ("misses", g s.cache_misses);
                  ("invalid", g s.cache_invalid);
                  ("entries", num snap.es_cache_entries);
                ] );
            ( "db",
              Trace_json.Obj
                [
                  ("epoch", num snap.es_db_epoch);
                  ("tuples", num snap.es_db_tuples);
                  ("updates_applied", g s.updates_applied);
                  ("updates_noop", g s.updates_noop);
                  ( "maintained",
                    Trace_json.Obj
                      [
                        ("tier_a", num snap.es_maint_a);
                        ("tier_b", num snap.es_maint_b);
                        ("tier_c", num snap.es_maint_c);
                      ] );
                ] );
            ("slow_queries", g s.slow_queries);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Evaluator                                                          *)
(* ------------------------------------------------------------------ *)

let runner_method : Protocol.count_method -> Runner.count_method = function
  | Protocol.Expansion -> Runner.Expansion
  | Protocol.Inclusion_exclusion -> Runner.Inclusion_exclusion
  | Protocol.Naive -> Runner.Naive

let op_label = Protocol.op_label

(* Drift tracking only runs when some observability output can see it:
   a metrics endpoint, a slow-query log, or an access log. *)
let obs_on (t : t) : bool =
  t.cfg.metrics_addr <> None || t.cfg.slow_query_log <> None
  || t.cfg.access_log <> None

(* Effective budget = min(per-request ask, server cap); absent on both
   sides means unlimited.  The budget is created at dequeue time, so
   time spent queued never counts against the compute allowance. *)
let cap_steps (t : t) (req : int option) : int option =
  match (t.cfg.max_steps_cap, req) with
  | None, r -> r
  | (Some _ as c), None -> c
  | Some c, Some r -> Some (min c r)

let cap_timeout (t : t) (req_ms : float option) : float option =
  let req_s = Option.map (fun ms -> ms /. 1000.) req_ms in
  match (t.cfg.request_timeout_s, req_s) with
  | None, r -> r
  | (Some _ as c), None -> c
  | Some c, Some r -> Some (Float.min c r)

(* The count-preserving rewrite, computed once per entry (at prepare
   time for a miss, lazily for entries that predate the optimizer).
   Analyzer witnesses are passed as hints only when the analysis is
   already memoized — the optimizer's own budgeted search is cheaper
   than forcing a full analysis.  The predicted-cost delta of a
   rewritten query is profiled here, and the optimized-query cost seeds
   the drift tracker's memo so it is not re-profiled per request. *)
let entry_optimized (t : t) (entry : Cache.entry) : Optimize.report =
  match entry.Cache.optimized with
  | Some r -> r
  | None ->
      let r =
        if not t.cfg.optimize then Optimize.identity entry.Cache.ucq
        else
          Telemetry.with_span "serve.optimize" (fun () ->
              let hints =
                match entry.Cache.analysis with
                | Some a -> a.Analysis.diagnostics
                | None -> []
              in
              Optimize.run ~hints entry.Cache.ucq)
      in
      if r.Optimize.changed then begin
        Telemetry.incr c_opt_queries;
        Telemetry.add c_opt_disjuncts (Optimize.disjuncts_removed r);
        Telemetry.add c_opt_atoms (Optimize.atoms_removed r);
        let cost q =
          Telemetry.with_span "serve.plan" (fun () ->
              Plan.try_cost ~max_steps:plan_predict_cap ~pool:t.pool
                ~db_elems:t.db_elems ~db_tuples:t.db_tuples q)
        in
        let after = cost r.Optimize.optimized in
        entry.Cache.plan_cost <- Some after;
        match (cost r.Optimize.original, after) with
        | Some before, Some after ->
            Telemetry.set_gauge g_opt_cost_delta (before -. after)
        | _ -> ()
      end;
      entry.Cache.optimized <- Some r;
      r

(* Cache lookup with the parse metered under its own span — a repeated
   query's trace visibly has no [serve.parse] (the acceptance criterion
   for the prepared-query cache). *)
let prepare (t : t) (cache : Cache.t) (text : string) : Cache.outcome =
  let outcome =
    match Cache.find cache text with
    | Some o -> o
    | None ->
        let parsed =
          Telemetry.with_span "serve.parse" (fun () ->
              match Parse.ucq_result text with
              | r -> r
              | exception e ->
                  Error (Ucqc_error.Internal (Printexc.to_string e)))
        in
        Cache.admit cache text parsed
  in
  (match outcome with
  | Cache.Hit _ -> bump t.stats.cache_hits c_cache_hit
  | Cache.Interned _ -> bump t.stats.cache_interned c_cache_interned
  | Cache.Miss entry ->
      bump t.stats.cache_misses c_cache_miss;
      (* optimization happens once, at prepare time *)
      ignore (entry_optimized t entry : Optimize.report)
  | Cache.Invalid _ -> bump t.stats.cache_invalid c_cache_invalid);
  Atomic.set t.stats.cache_entries (Cache.entries cache);
  outcome

let abandoned_json (a : Runner.abandoned) : Trace_json.t =
  Trace_json.Obj
    [
      ("phase", Trace_json.Str a.Runner.phase);
      ("steps", num a.Runner.steps);
      ("elapsed_s", fnum a.Runner.elapsed_s);
    ]

(* ------------------------------------------------------------------ *)
(* Plan-drift tracking                                                *)
(* ------------------------------------------------------------------ *)

(* Memoized per cache entry: the plan predictor's total-cost estimate
   for this query on this database.  [Some None] records "the predictor
   itself capped out" so it is never retried per request. *)
let predicted_cost (t : t) (entry : Cache.entry) : float option =
  match entry.Cache.plan_cost with
  | Some memo -> memo
  | None ->
      (* predict the query the evaluator actually runs *)
      let ucq = (entry_optimized t entry).Optimize.optimized in
      let memo =
        Telemetry.with_span "serve.plan" (fun () ->
            Plan.try_cost ~max_steps:plan_predict_cap ~pool:t.pool
              ~db_elems:t.db_elems ~db_tuples:t.db_tuples ucq)
      in
      entry.Cache.plan_cost <- Some memo;
      memo

(* Lint codes for a slow-log entry, via the same memoized analysis the
   [check] op uses (primary spelling only — good enough for a log). *)
let entry_lint_codes (t : t) (entry : Cache.entry) : string list =
  let report =
    match entry.Cache.analysis with
    | Some r -> r
    | None ->
        let r =
          Telemetry.with_span "serve.analysis" (fun () ->
              Analysis.check ~pool:t.pool entry.Cache.primary_text)
        in
        entry.Cache.analysis <- Some r;
        r
  in
  List.sort_uniq compare
    (List.map
       (fun d -> d.Diagnostic.code)
       report.Analysis.diagnostics)

(* Compare what the plan predicted with what the budget actually
   metered; fire the slow-query log when observed > k × predicted. *)
let note_drift (t : t) ~(rid : string) ~(query : string)
    ~(entry : Cache.entry) ~(observed : int) ~(elapsed_ms : float)
    ~(degradation : string) : unit =
  match predicted_cost t entry with
  | None -> ()
  | Some pred when pred <= 0. -> ()
  | Some pred ->
      let ratio = float_of_int observed /. pred in
      Telemetry.observe h_drift ratio;
      if ratio > t.cfg.slow_factor && observed >= slow_min_steps then begin
        bump t.stats.slow_queries c_slow;
        match t.slow_oc with
        | None -> ()
        | Some oc ->
            let line =
              Slowlog.to_json
                {
                  Slowlog.ts = Unix.gettimeofday ();
                  request_id = rid;
                  query;
                  op = "count";
                  predicted_cost = pred;
                  observed_steps = observed;
                  factor = ratio;
                  threshold = t.cfg.slow_factor;
                  degradation;
                  lint_codes = entry_lint_codes t entry;
                  elapsed_ms;
                }
            in
            output_string oc (line ^ "\n");
            flush oc
      end

let answer_count (t : t) (cache : Cache.t) ?id ~rid ~query ~meth ~seed
    ~max_steps ~timeout_ms ~no_fallback () : Protocol.response =
  let outcome = prepare t cache query in
  let cache_field = ("cache", Trace_json.Str (Cache.outcome_label outcome)) in
  match outcome with
  | Cache.Invalid err ->
      let r = Protocol.of_ucqc_error ?id err in
      { r with Protocol.body = r.Protocol.body @ [ cache_field ] }
  | Cache.Hit entry | Cache.Interned entry | Cache.Miss entry -> (
      (* Evaluate the count-preserving rewrite of the query: same count
         by construction, fewer disjuncts for the 2^l engines and the
         maintained state. *)
      let eval_ucq = (entry_optimized t entry).Optimize.optimized in
      (* Tiered incremental counting: build the maintained state at the
         first count of a retained entry (capacity-0 entries are
         throwaway, and tier-B preparation is not free), then prefer a
         maintained or epoch-memoized count over any recomputation.  A
         maintained count is exact whatever [method] asked for.  The
         request that builds the state still evaluates normally, so its
         response carries real step counts and feeds drift tracking. *)
      let built_now = ref false in
      let maint =
        if t.cfg.cache_capacity > 0 then begin
          (match entry.Cache.maint with
          | Some _ -> ()
          | None ->
              built_now := true;
              let budget =
                Budget.make
                  ?max_steps:(cap_steps t max_steps)
                  ?timeout:(cap_timeout t timeout_ms)
                  ()
              in
              entry.Cache.maint <-
                Some
                  (Telemetry.with_span "serve.maintain" (fun () ->
                       Delta.prepare ~budget eval_ucq t.ddb)));
          entry.Cache.maint
        end
        else None
      in
      let tier_fields =
        match maint with
        | None -> []
        | Some st ->
            [
              ( "tier",
                Trace_json.Str (Tier.to_string (Delta.effective_tier st)) );
              ("epoch", num (Delta.epoch t.ddb));
            ]
      in
      match
        if !built_now then None
        else Option.bind maint (fun st -> Delta.maintained_count st t.ddb)
      with
      | Some (n, src) ->
          let source =
            match src with
            | Delta.Maintained -> "maintained"
            | Delta.Memoized -> "memoized"
          in
          Protocol.make_response ?id Protocol.Ok_
            [
              ( "result",
                Trace_json.Obj
                  ([
                     ("count", num n);
                     ("exact", Trace_json.Bool true);
                     ("source", Trace_json.Str source);
                   ]
                  @ tier_fields) );
              cache_field;
              ("steps", num 0);
            ]
      | None ->
      let budget =
        Budget.make
          ?max_steps:(cap_steps t max_steps)
          ?timeout:(cap_timeout t timeout_ms)
          ()
      in
      (* Published so a forced drain can cancel this request
         cooperatively; cleared before the response is built. *)
      Atomic.set t.current_budget (Some budget);
      let eval_t0 = Unix.gettimeofday () in
      let result =
        Fun.protect
          ~finally:(fun () -> Atomic.set t.current_budget None)
          (fun () ->
            Telemetry.with_span "serve.eval" ~budget (fun () ->
                Runner.count ~via:(runner_method meth)
                  ~fallback:(not no_fallback) ~seed ~pool:t.pool ~budget
                  eval_ucq (Delta.structure t.ddb)))
      in
      let observed = Budget.steps_done budget in
      let steps_field = ("steps", num observed) in
      Telemetry.observe h_count_steps (float_of_int observed);
      if obs_on t then begin
        let degradation =
          match result with
          | Ok (Runner.Exact _) -> "exact"
          | Ok (Runner.Approximate _) -> "karp-luby"
          | Error _ -> "error"
        in
        note_drift t ~rid ~query ~entry ~observed
          ~elapsed_ms:((Unix.gettimeofday () -. eval_t0) *. 1000.)
          ~degradation
      end;
      (match result with
      | Ok (Runner.Exact n) ->
          (* exact recomputes are memoized at the current epoch; anything
             approximate or failed must not be *)
          (match maint with
          | Some st -> Delta.memoize st t.ddb n
          | None -> ());
          Protocol.make_response ?id Protocol.Ok_
            [
              ( "result",
                Trace_json.Obj
                  ([
                     ("count", num n);
                     ("exact", Trace_json.Bool true);
                     ("source", Trace_json.Str "computed");
                   ]
                  @ tier_fields) );
              cache_field;
              steps_field;
            ]
      | Ok (Runner.Approximate { value; epsilon; delta; exhausted; abandoned })
        ->
          Protocol.make_response ?id Protocol.Degraded
            [
              ( "result",
                Trace_json.Obj
                  [
                    ("estimate", fnum value);
                    ("epsilon", fnum epsilon);
                    ("delta", fnum delta);
                    ("exact", Trace_json.Bool false);
                    ( "exhausted",
                      Trace_json.Obj
                        [
                          ("phase", Trace_json.Str exhausted.Budget.phase);
                          ("steps_done", num exhausted.Budget.steps_done);
                        ] );
                    ("abandoned", abandoned_json abandoned);
                  ] );
              cache_field;
              steps_field;
            ]
      | Error err ->
          let r = Protocol.of_ucqc_error ?id err in
          {
            r with
            Protocol.body = r.Protocol.body @ [ cache_field; steps_field ];
          }))

let classify_json (r : Classify.report) : Trace_json.t =
  Trace_json.Obj
    [
      ("combined_tw", num r.Classify.combined_tw);
      ("combined_contract_tw", num r.Classify.combined_contract_tw);
      ("gamma_max_tw", num r.Classify.gamma_max_tw);
      ("gamma_max_contract_tw", num r.Classify.gamma_max_contract_tw);
      ("quantifier_free", Trace_json.Bool r.Classify.quantifier_free);
      ( "union_of_self_join_free",
        Trace_json.Bool r.Classify.union_of_self_join_free );
      ("num_quantified", num r.Classify.num_quantified);
      ("num_disjuncts", num r.Classify.num_disjuncts);
    ]

let answer_classify (t : t) (cache : Cache.t) ?id ~query () :
    Protocol.response =
  let outcome = prepare t cache query in
  let cache_field = ("cache", Trace_json.Str (Cache.outcome_label outcome)) in
  match outcome with
  | Cache.Invalid err ->
      let r = Protocol.of_ucqc_error ?id err in
      { r with Protocol.body = r.Protocol.body @ [ cache_field ] }
  | Cache.Hit entry | Cache.Interned entry | Cache.Miss entry ->
      let vars =
        Ucq.arity entry.Cache.ucq + Ucq.num_quantified entry.Cache.ucq
      in
      if vars > classify_var_gate then begin
        (* classify runs the exact treewidth engine unbudgeted; in serve
           mode that must not be reachable with unbounded input *)
        let r =
          Protocol.error_response ?id ~kind:"unsupported" ~code:65
            (Printf.sprintf
               "classify is limited to %d total variables in serve mode \
                (query has %d); use the one-shot CLI"
               classify_var_gate vars)
        in
        { r with Protocol.body = r.Protocol.body @ [ cache_field ] }
      end
      else
        let report =
          match entry.Cache.classify with
          | Some r -> r
          | None ->
              let r =
                Telemetry.with_span "serve.analysis" (fun () ->
                    Classify.analyze ~with_gamma:false ~pool:t.pool
                      entry.Cache.ucq)
              in
              entry.Cache.classify <- Some r;
              r
        in
        (* the maintenance tier rides along: the same selection the
           watch/serve update engines use (gated like UCQ207), computed
           on the optimized query — the one actually maintained *)
        let sel = Tier.select (entry_optimized t entry).Optimize.optimized in
        let result =
          match classify_json report with
          | Trace_json.Obj fs ->
              Trace_json.Obj
                (fs
                @ [
                    ( "maintenance_tier",
                      Trace_json.Obj
                        [
                          ( "tier",
                            Trace_json.Str (Tier.to_string sel.Tier.tier) );
                          ("reason", Trace_json.Str sel.Tier.reason);
                        ] );
                  ])
          | j -> j
        in
        Protocol.make_response ?id Protocol.Ok_
          [ ("result", result); cache_field ]

let answer_check (t : t) (cache : Cache.t) ?id ~query () : Protocol.response =
  let outcome = prepare t cache query in
  let cache_field = ("cache", Trace_json.Str (Cache.outcome_label outcome)) in
  (* [Analysis.check] is total (parse failures become diagnostics) and
     budgeted internally, so even an Invalid outcome gets a report.  The
     report is memoized only for the entry's primary spelling: spans are
     text-relative, so an alias text must be re-analyzed. *)
  let memoized (entry : Cache.entry) : Analysis.report option =
    if String.equal entry.Cache.primary_text query then begin
      (match entry.Cache.analysis with
      | Some _ -> ()
      | None ->
          entry.Cache.analysis <-
            Some
              (Telemetry.with_span "serve.analysis" (fun () ->
                   Analysis.check ~pool:t.pool query)));
      entry.Cache.analysis
    end
    else None
  in
  let report =
    match outcome with
    | Cache.Hit e | Cache.Interned e | Cache.Miss e -> (
        match memoized e with
        | Some r -> r
        | None ->
            Telemetry.with_span "serve.analysis" (fun () ->
                Analysis.check ~pool:t.pool query))
    | Cache.Invalid _ ->
        Telemetry.with_span "serve.analysis" (fun () ->
            Analysis.check ~pool:t.pool query)
  in
  let max_sev =
    match Analysis.max_severity report with
    | None -> Trace_json.Null
    | Some s -> Trace_json.Str (Diagnostic.severity_to_string s)
  in
  Protocol.make_response ?id Protocol.Ok_
    [
      ("result", Analysis.report_to_json report);
      ("findings", num (List.length report.Analysis.diagnostics));
      ("max_severity", max_sev);
      cache_field;
    ]

(* ------------------------------------------------------------------ *)
(* Mutations (evaluator thread: the single-writer ordering point)     *)
(* ------------------------------------------------------------------ *)

(* Fold one accepted change into every maintained state.  One budget
   per receipt, shared across states: a fold that exhausts it degrades
   its state to tier C (recorded reason, never a wrong count) — the
   same degradation-not-wrongness contract as [ucqc watch]. *)
let fold_receipt (t : t) (cache : Cache.t) (r : Delta.applied) : unit =
  if r.Delta.changed then begin
    bump t.stats.updates_applied c_updates_applied;
    let budget =
      Budget.make ?max_steps:t.cfg.max_steps_cap
        ?timeout:t.cfg.request_timeout_s ()
    in
    Cache.iter cache (fun e ->
        match e.Cache.maint with
        | Some st -> Delta.apply_state ~budget st t.ddb r
        | None -> ())
  end
  else bump t.stats.updates_noop c_updates_noop;
  Telemetry.set_gauge g_db_epoch (float_of_int (Delta.epoch t.ddb))

let update_result (r : Delta.applied) : Trace_json.t =
  Trace_json.Obj
    [
      ("applied", Trace_json.Bool r.Delta.changed);
      ("noop", Trace_json.Bool (not r.Delta.changed));
      ("epoch", num r.Delta.epoch);
    ]

let answer_mutation (t : t) (cache : Cache.t) ?id
    ~(sign : Delta_parse.sign) ~(fact : string) () : Protocol.response =
  let result =
    match Delta_parse.fact_string ~sign fact with
    | Error e -> Error e
    | Ok spec -> (
        match Delta.resolve t.ddb spec with
        | Error e -> Error e
        | Ok u -> Delta.apply t.ddb u)
  in
  match result with
  | Error e -> Protocol.of_ucqc_error ?id e
  | Ok r ->
      fold_receipt t cache r;
      Protocol.make_response ?id Protocol.Ok_ [ ("result", update_result r) ]

let answer_apply_batch (t : t) (cache : Cache.t) ?id
    ~(deltas : string list) () : Protocol.response =
  (* resolve (and thereby validate) the whole batch before touching the
     database, so a rejected batch leaves no partial effects.  The
     universe and signature are fixed, so updates resolved against the
     pre-batch session cannot become invalid mid-batch. *)
  let rec resolve_all acc i = function
    | [] -> Ok (List.rev acc)
    | d :: rest -> (
        match Delta_parse.delta_string ~lineno:(i + 1) d with
        | Error e -> Error e
        | Ok spec -> (
            match Delta.resolve t.ddb spec with
            | Error e -> Error e
            | Ok u -> resolve_all (u :: acc) (i + 1) rest))
  in
  match resolve_all [] 0 deltas with
  | Error e -> Protocol.of_ucqc_error ?id e
  | Ok updates ->
      let applied = ref 0 and noop = ref 0 in
      List.iter
        (fun u ->
          match Delta.apply t.ddb u with
          | Ok r ->
              if r.Delta.changed then incr applied else incr noop;
              fold_receipt t cache r
          | Error _ -> () (* unreachable: resolved above, single writer *))
        updates;
      Protocol.make_response ?id Protocol.Ok_
        [
          ( "result",
            Trace_json.Obj
              [
                ("applied", num !applied);
                ("noop", num !noop);
                ("epoch", num (Delta.epoch t.ddb));
              ] );
        ]

let answer (t : t) (cache : Cache.t) (w : work) : Protocol.response =
  match w.wop with
  | Protocol.Ping -> pong t ?id:w.wid ()  (* unreachable: answered inline *)
  | Protocol.Stats -> stats_response t ?id:w.wid ()
  | Protocol.Count { query; meth; seed; max_steps; timeout_ms; no_fallback } ->
      answer_count t cache ?id:w.wid ~rid:w.wrid ~query ~meth ~seed ~max_steps
        ~timeout_ms ~no_fallback ()
  | Protocol.Classify { query } ->
      answer_classify t cache ?id:w.wid ~query ()
  | Protocol.Check { query } -> answer_check t cache ?id:w.wid ~query ()
  | Protocol.Insert { fact } ->
      answer_mutation t cache ?id:w.wid ~sign:Delta_parse.Insert ~fact ()
  | Protocol.Delete { fact } ->
      answer_mutation t cache ?id:w.wid ~sign:Delta_parse.Delete ~fact ()
  | Protocol.Apply { deltas } -> answer_apply_batch t cache ?id:w.wid ~deltas ()

(* One JSON line per evaluated request — written only by the evaluator
   thread, so lines never interleave. *)
let access_line (w : work) (resp : Protocol.response) ~(elapsed_ms : float)
    ~(queue_ms : float) : string =
  Trace_json.to_string
    (Trace_json.Obj
       [
         ("ts", fnum (Unix.gettimeofday ()));
         ("request_id", Trace_json.Str w.wrid);
         ("op", Trace_json.Str (op_label w.wop));
         ( "status",
           Trace_json.Str (Protocol.status_to_string resp.Protocol.rstatus) );
         ("code", num resp.Protocol.rcode);
         ("conn", num w.wconn.cid);
         ("elapsed_ms", fnum elapsed_ms);
         ("queue_ms", fnum queue_ms);
       ])

(* Per-request isolation boundary: nothing thrown while answering one
   request may reach the evaluator loop. *)
let process (t : t) (cache : Cache.t) (w : work) : unit =
  let t0 = Unix.gettimeofday () in
  let queue_ms = (t0 -. w.enqueued_at) *. 1000. in
  let resp =
    try
      Telemetry.with_span "serve.request"
        ~attrs:(fun () ->
          [
            ("op", Telemetry.S (op_label w.wop));
            ("request_id", Telemetry.S w.wrid);
          ])
        (fun () -> answer t cache w)
    with e ->
      Protocol.error_response ?id:w.wid ~kind:"internal" ~code:70
        (Printf.sprintf "request failed: %s" (Printexc.to_string e))
  in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Admission.note_service_ms t.queue elapsed_ms;
  let resp =
    {
      resp with
      Protocol.body =
        resp.Protocol.body
        @ [
            ("request_id", Trace_json.Str w.wrid);
            ("elapsed_ms", fnum elapsed_ms);
            ("queue_ms", fnum queue_ms);
          ];
    }
  in
  count_response_status t resp;
  let op = op_label w.wop in
  (match List.assoc_opt op op_latency_histograms with
  | Some h -> Telemetry.observe h elapsed_ms
  | None -> ());
  if obs_on t then begin
    Rolling.observe t.rolling_all elapsed_ms;
    (match List.assoc_opt op t.rolling_by_op with
    | Some r -> Rolling.observe r elapsed_ms
    | None -> ());
    match t.access_oc with
    | Some oc ->
        output_string oc (access_line w resp ~elapsed_ms ~queue_ms ^ "\n");
        flush oc
    | None -> ()
  end;
  send w.wconn resp;
  release t w.wconn

let publish_snapshot (t : t) (cache : Cache.t) : unit =
  let a = ref 0 and b = ref 0 and c = ref 0 in
  Cache.iter cache (fun e ->
      match e.Cache.maint with
      | None -> ()
      | Some st -> (
          match Delta.effective_tier st with
          | Tier.A -> incr a
          | Tier.B -> incr b
          | Tier.C -> incr c));
  Atomic.set t.eval_snap
    {
      es_pool_spawned = Pool.spawn_count ();
      es_pool_idle = Pool.idle_count ();
      es_cache_entries = Cache.entries cache;
      es_cache_invalids = Cache.invalids cache;
      es_db_epoch = Delta.epoch t.ddb;
      es_db_tuples = Structure.num_tuples (Delta.structure t.ddb);
      es_maint_a = !a;
      es_maint_b = !b;
      es_maint_c = !c;
    }

let evaluator_loop (t : t) : unit =
  let cache = Cache.create ~capacity:t.cfg.cache_capacity () in
  publish_snapshot t cache;
  let rec loop () =
    match Admission.take t.queue with
    | None -> ()
    | Some w ->
        process t cache w;
        publish_snapshot t cache;
        loop ()
  in
  (try loop () with _ -> ());
  Atomic.set t.evaluator_done true

(* ------------------------------------------------------------------ *)
(* Connection threads                                                 *)
(* ------------------------------------------------------------------ *)

let handle_request (t : t) (c : conn) (line : string) : unit =
  bump t.stats.requests_total c_requests;
  match Protocol.parse_request line with
  | Error e ->
      bump t.stats.frames_malformed c_malformed;
      bump t.stats.responses_error c_errors;
      send c (Protocol.of_req_error e)
  | Ok { Protocol.id; op } -> (
      (match List.assoc_opt (op_label op) op_counters with
      | Some cnt -> Telemetry.incr cnt
      | None -> ());
      match op with
      | Protocol.Ping ->
          bump t.stats.responses_ok c_ok;
          send c (pong t ?id ())
      | Protocol.Stats ->
          bump t.stats.responses_ok c_ok;
          send c (stats_response t ?id ())
      | Protocol.Count _ | Protocol.Classify _ | Protocol.Check _
      | Protocol.Insert _ | Protocol.Delete _ | Protocol.Apply _ ->
          if draining t then send c (shutting_down_response ?id ())
          else begin
            Mutex.protect c.wlock (fun () -> c.pending <- c.pending + 1);
            let w =
              {
                wid = id;
                wrid = Reqid.next t.reqids;
                wop = op;
                wconn = c;
                enqueued_at = Unix.gettimeofday ();
              }
            in
            match Admission.offer t.queue w with
            | Admission.Accepted -> ()
            | Admission.Shed { retry_after_ms } ->
                Mutex.protect c.wlock (fun () -> c.pending <- c.pending - 1);
                bump t.stats.shed c_shed;
                send c
                  (Protocol.make_response ?id Protocol.Overloaded
                     [
                       ("retry_after_ms", num retry_after_ms);
                       ("message", Trace_json.Str "admission queue is full");
                     ])
            | Admission.Draining ->
                Mutex.protect c.wlock (fun () -> c.pending <- c.pending - 1);
                send c (shutting_down_response ?id ())
          end)

let handle_frame (t : t) (c : conn) (fr : Framer.frame) : unit =
  match fr with
  | Framer.Oversized limit ->
      bump t.stats.frames_oversized c_oversized;
      bump t.stats.responses_error c_errors;
      send c (Protocol.of_req_error (Protocol.Frame_too_large limit))
  | Framer.Frame line -> if String.trim line <> "" then handle_request t c line

let conn_loop (t : t) (c : conn) : unit =
  (try
     Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO tick_s;
     Unix.setsockopt_float c.fd Unix.SO_SNDTIMEO write_timeout_s
   with _ -> ());
  let framer = Framer.create ~max_frame_bytes:t.cfg.max_frame_bytes () in
  let buf = Bytes.create 8192 in
  let idle_deadline = ref (Unix.gettimeofday () +. t.cfg.idle_timeout_s) in
  let running = ref true in
  while !running do
    if Atomic.get t.stopping then running := false
    else
      match Unix.read c.fd buf 0 (Bytes.length buf) with
      | 0 ->
          (* client EOF; a final unterminated line still gets answered *)
          (match Framer.eof framer with
          | Some fr -> handle_frame t c fr
          | None -> ());
          running := false
      | n ->
          idle_deadline := Unix.gettimeofday () +. t.cfg.idle_timeout_s;
          List.iter (handle_frame t c) (Framer.feed framer buf ~off:0 ~len:n)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          if Unix.gettimeofday () > !idle_deadline then begin
            bump t.stats.idle_closed c_idle_closed;
            running := false
          end
      | exception _ -> running := false
  done;
  Mutex.protect c.wlock (fun () -> c.reader_done <- true);
  Atomic.decr t.stats.connections_active;
  close_if_done t c

(* ------------------------------------------------------------------ *)
(* Accept loop                                                        *)
(* ------------------------------------------------------------------ *)

let accept_one (t : t) (fd : Unix.file_descr) : unit =
  bump t.stats.connections_total c_connections;
  let active = Atomic.fetch_and_add t.stats.connections_active 1 in
  if active >= t.cfg.max_connections then begin
    Atomic.decr t.stats.connections_active;
    bump t.stats.shed c_shed;
    (* shed at accept: one well-formed frame, then hang up *)
    let line =
      Protocol.to_string
        (Protocol.make_response Protocol.Overloaded
           [
             ("retry_after_ms", num 1000);
             ("message", Trace_json.Str "connection limit reached");
           ])
    in
    (try
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0;
       ignore (Unix.write_substring fd line 0 (String.length line))
     with _ -> ());
    try Unix.close fd with _ -> ()
  end
  else begin
    (match t.cfg.listen with
    | Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ())
    | Unix_socket _ -> ());
    let c =
      {
        cid = Atomic.fetch_and_add t.next_cid 1;
        fd;
        wlock = Mutex.create ();
        fd_open = true;
        reader_done = false;
        pending = 0;
      }
    in
    Mutex.protect t.conns_lock (fun () -> Hashtbl.replace t.conns c.cid c);
    let th =
      Thread.create
        (fun () ->
          try conn_loop t c
          with _ ->
            (* belt and braces: a crashed reader must still release *)
            Mutex.protect c.wlock (fun () -> c.reader_done <- true);
            Atomic.decr t.stats.connections_active;
            close_if_done t c)
        ()
    in
    Mutex.protect t.conns_lock (fun () -> t.threads <- th :: t.threads)
  end

let accept_loop (t : t) : unit =
  while not (draining t) do
    match Unix.select [ t.listen_fd ] [] [] tick_s with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ -> accept_one t fd
        | exception
            Unix.Unix_error
              ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) ->
            ()
        | exception _ -> ())
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception _ ->
        (* listen fd went bad; without it the loop has no purpose, but
           never spin *)
        if not (draining t) then Thread.delay tick_s
  done

(* ------------------------------------------------------------------ *)
(* Metrics gateway                                                    *)
(* ------------------------------------------------------------------ *)

let exposition_content_type = "text/plain; version=0.0.4; charset=utf-8"

(* "serve.latency_ms.count" -> ("serve.latency_ms", "count"): the
   per-op telemetry histograms export as one family with an [op]
   label instead of an op-mangled family name. *)
let split_op_histogram (name : string) : (string * string) option =
  let try_prefix p =
    let lp = String.length p in
    if String.length name > lp && String.sub name 0 lp = p then
      Some
        (String.sub p 0 (lp - 1), String.sub name lp (String.length name - lp))
    else None
  in
  match try_prefix "serve.latency_ms." with
  | Some r -> Some r
  | None -> try_prefix "serve.steps."

(* Render the full exposition.  Everything read here is an atomic cell,
   an atomic snapshot, or a lock-free rolling window — the evaluator
   thread is never consulted, so scraping cannot add query latency. *)
let render_metrics (t : t) : string =
  let p = Prometheus.create () in
  let gauge ?help ?labels name v =
    Prometheus.scalar p ?help ?labels ~kind:Prometheus.Gauge name v
  in
  gauge
    ~help:"Build identity (value is always 1)"
    ~labels:
      [ ("version", Buildid.version); ("commit", Buildid.git_commit ()) ]
    "ucqc_build_info" 1.;
  gauge "ucqc_uptime_seconds" (Unix.gettimeofday () -. t.started_at);
  gauge ~help:"1 while the server is draining" "ucqc_draining"
    (if draining t then 1. else 0.);
  gauge "ucqc_connections_active"
    (float_of_int (Atomic.get t.stats.connections_active));
  gauge "ucqc_queue_depth" (float_of_int (Admission.depth t.queue));
  gauge "ucqc_queue_service_ewma_ms" (Admission.service_ewma_ms t.queue);
  let snap = Atomic.get t.eval_snap in
  gauge "ucqc_pool_domains_spawned" (float_of_int snap.es_pool_spawned);
  gauge "ucqc_pool_domains_idle" (float_of_int snap.es_pool_idle);
  gauge "ucqc_cache_entries" (float_of_int snap.es_cache_entries);
  gauge "ucqc_cache_invalid_entries" (float_of_int snap.es_cache_invalids);
  gauge ~help:"Database epoch (accepted mutations)" "ucqc_db_epoch"
    (float_of_int snap.es_db_epoch);
  gauge "ucqc_db_tuples" (float_of_int snap.es_db_tuples);
  List.iter
    (fun (tier, v) ->
      gauge ~labels:[ ("tier", tier) ]
        ~help:"Cached maintained states by effective tier"
        "ucqc_maintained_states" (float_of_int v))
    [ ("A", snap.es_maint_a); ("B", snap.es_maint_b); ("C", snap.es_maint_c) ];
  (* every registered telemetry counter / gauge / histogram under its
     sanitized name: the serve.* family, pool.steals, ... — a counter
     added anywhere in the stack shows up here with no further code *)
  List.iter
    (fun (name, v) ->
      Prometheus.scalar p ~kind:Prometheus.Counter
        ("ucqc_" ^ Prometheus.sanitize name)
        (float_of_int v))
    (Telemetry.counters_snapshot ());
  List.iter
    (fun (name, v) -> gauge ("ucqc_" ^ Prometheus.sanitize name) v)
    (Telemetry.gauges_snapshot ());
  List.iter
    (fun (name, hs) ->
      let fam, labels =
        match split_op_histogram name with
        | Some (base, op) ->
            ("ucqc_" ^ Prometheus.sanitize base, [ ("op", op) ])
        | None -> ("ucqc_" ^ Prometheus.sanitize name, [])
      in
      Prometheus.log2_histogram p ~labels fam
        ~counts:hs.Telemetry.hs_counts ~sum:hs.Telemetry.hs_sum)
    (Telemetry.histograms_snapshot ());
  (* recent-traffic quantiles from the rolling windows *)
  List.iter
    (fun (op, r) ->
      let counts = Rolling.snapshot r in
      List.iter
        (fun (qs, q) ->
          gauge
            ~labels:[ ("op", op); ("quantile", qs); ("window", "60s") ]
            "ucqc_rolling_latency_ms"
            (Rolling.quantile_of_counts counts q))
        [ ("0.5", 0.5); ("0.95", 0.95); ("0.99", 0.99) ])
    (("all", t.rolling_all) :: t.rolling_by_op);
  Prometheus.render p

let gateway_handler (t : t) (req : Microhttp.request) : Obs_gateway.reply =
  let text status body =
    {
      Obs_gateway.status;
      content_type = "text/plain; charset=utf-8";
      body;
    }
  in
  let unhealthy = draining t || Atomic.get t.evaluator_done in
  match (req.Microhttp.meth, Microhttp.path req.Microhttp.target) with
  | "GET", "/metrics" ->
      {
        Obs_gateway.status = 200;
        content_type = exposition_content_type;
        body = render_metrics t;
      }
  | "GET", "/healthz" ->
      if unhealthy then text 503 "draining\n" else text 200 "ok\n"
  | "GET", "/readyz" ->
      if unhealthy then text 503 "not ready\n" else text 200 "ready\n"
  | "GET", _ -> text 404 "not found\n"
  | _, _ -> text 405 "method not allowed\n"

let metrics_port (t : t) : int option = Option.map Obs_gateway.port t.gateway

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

let bind_listen (l : listen) : Unix.file_descr =
  match l with
  | Unix_socket path ->
      (* reclaim a stale socket file, but never unlink anything else *)
      (match Unix.stat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> ( try Unix.unlink path with _ -> ())
      | _ ->
          raise
            (Unix.Unix_error (Unix.EEXIST, "bind", path))
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 128
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      fd
  | Tcp { host; port } ->
      let addr =
        try Unix.inet_addr_of_string host
        with _ -> (
          match
            Unix.getaddrinfo host ""
              [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
          with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> raise (Unix.Unix_error (Unix.EINVAL, "getaddrinfo", host)))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (addr, port));
         Unix.listen fd 128
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      fd

let start ?env (cfg : config) ~(db : Structure.t) : t =
  (* a client hanging up mid-write must be an EPIPE, not a process kill *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  (* a metrics endpoint with telemetry off would export zeros: flip the
     metric cells on (recording off, so a resident server accumulates no
     unbounded span buffers) unless the caller already enabled more *)
  if cfg.metrics_addr <> None && not (Telemetry.enabled ()) then
    Telemetry.enable ~record:false ();
  (* force the memo now: ping and /metrics must never shell out to git
     on a latency path *)
  ignore (Buildid.git_commit ());
  let listen_fd = bind_listen cfg.listen in
  (* partial-startup unwinding: anything acquired before a later
     failure (bad log path, metrics port in use) is released *)
  let cleanup : (unit -> unit) list ref =
    ref [ (fun () -> try Unix.close listen_fd with _ -> ()) ]
  in
  let guard f =
    try f ()
    with e ->
      List.iter (fun g -> g ()) !cleanup;
      raise e
  in
  let open_log path_opt =
    guard (fun () ->
        match path_opt with
        | None -> None
        | Some path ->
            let oc =
              open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
            in
            cleanup := (fun () -> try close_out oc with _ -> ()) :: !cleanup;
            Some oc)
  in
  let access_oc = open_log cfg.access_log in
  let slow_oc = open_log cfg.slow_query_log in
  let t =
    {
      cfg;
      ddb = Delta.open_db ?env db;
      db_elems = Structure.universe_size db;
      db_tuples = Structure.num_tuples db;
      pool = Pool.create ~jobs:cfg.jobs ();
      listen_fd;
      queue = Admission.create ~depth:cfg.queue_depth ();
      stats = make_stats ();
      eval_snap =
        Atomic.make
          {
            es_pool_spawned = Pool.spawn_count ();
            es_pool_idle = Pool.idle_count ();
            es_cache_entries = 0;
            es_cache_invalids = 0;
            es_db_epoch = 0;
            es_db_tuples = Structure.num_tuples db;
            es_maint_a = 0;
            es_maint_b = 0;
            es_maint_c = 0;
          };
      reqids = Reqid.create ();
      rolling_all = Rolling.create ();
      rolling_by_op = List.map (fun op -> (op, Rolling.create ())) evaluated_ops;
      access_oc;
      slow_oc;
      started_at = Unix.gettimeofday ();
      stop_requested_flag = Atomic.make false;
      stopping = Atomic.make false;
      stop_signal = Atomic.make 0;
      evaluator_done = Atomic.make false;
      current_budget = Atomic.make None;
      next_cid = Atomic.make 1;
      conns = Hashtbl.create 64;
      conns_lock = Mutex.create ();
      threads = [];
      acceptor = None;
      evaluator = None;
      gateway = None;
      stop_lock = Mutex.create ();
      stopped = false;
      discarded_total = 0;
    }
  in
  (match cfg.metrics_addr with
  | Some (host, port) ->
      t.gateway <-
        Some
          (guard (fun () ->
               Obs_gateway.start ~host ~port ~handler:(gateway_handler t)))
  | None -> ());
  t.evaluator <- Some (Thread.create (fun () -> evaluator_loop t) ());
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let request_stop (t : t) : unit = Atomic.set t.stop_requested_flag true
let stop_requested (t : t) : bool = Atomic.get t.stop_requested_flag

let install_signal_stop (t : t) : unit =
  let handler signal =
    (* signal-handler safe: two atomic stores, nothing else *)
    Atomic.set t.stop_signal signal;
    request_stop t
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handler)

let last_signal (t : t) : int option =
  match Atomic.get t.stop_signal with 0 -> None | s -> Some s

let wait_until_stop_requested (t : t) : unit =
  while not (stop_requested t) do
    Thread.delay 0.1
  done

let stop (t : t) : int =
  Mutex.protect t.stop_lock (fun () ->
      if t.stopped then t.discarded_total
      else begin
        t.stopped <- true;
        Atomic.set t.stop_requested_flag true;
        Atomic.set t.stopping true;
        (* 1. stop accepting *)
        (match t.acceptor with Some th -> Thread.join th | None -> ());
        t.acceptor <- None;
        (try Unix.close t.listen_fd with _ -> ());
        (match t.cfg.listen with
        | Unix_socket p -> ( try Unix.unlink p with _ -> ())
        | Tcp _ -> ());
        (* 2. close admission; the evaluator retires the backlog *)
        Admission.close t.queue;
        let deadline = Unix.gettimeofday () +. t.cfg.drain_deadline_s in
        while
          (not (Atomic.get t.evaluator_done))
          && Unix.gettimeofday () < deadline
        do
          Thread.delay 0.01
        done;
        let discarded = ref 0 in
        if not (Atomic.get t.evaluator_done) then begin
          (* 3. deadline exceeded: answer the backlog with
             [shutting_down] and cancel the in-flight request *)
          let dropped = Admission.discard_pending t.queue in
          List.iter
            (fun w ->
              incr discarded;
              bump t.stats.discarded c_discarded;
              send w.wconn (shutting_down_response ?id:w.wid ());
              release t w.wconn)
            dropped;
          (match Atomic.get t.current_budget with
          | Some b -> Budget.cancel b
          | None -> ());
          (* grace for the cancelled request to unwind cooperatively *)
          let grace =
            Unix.gettimeofday () +. Float.max 1.0 t.cfg.drain_deadline_s
          in
          while
            (not (Atomic.get t.evaluator_done))
            && Unix.gettimeofday () < grace
          do
            Thread.delay 0.01
          done
        end;
        if Atomic.get t.evaluator_done then (
          (match t.evaluator with Some th -> Thread.join th | None -> ());
          t.evaluator <- None);
        (* 4. wake blocked readers and join connection threads *)
        let conns =
          Mutex.protect t.conns_lock (fun () ->
              Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
        in
        List.iter
          (fun c ->
            Mutex.protect c.wlock (fun () ->
                if c.fd_open then
                  try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with _ -> ()))
          conns;
        let threads =
          Mutex.protect t.conns_lock (fun () ->
              let ths = t.threads in
              t.threads <- [];
              ths)
        in
        List.iter (fun th -> try Thread.join th with _ -> ()) threads;
        (* 5. anything still open (a response the evaluator never
           delivered): close unconditionally *)
        let leftovers =
          Mutex.protect t.conns_lock (fun () ->
              let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
              Hashtbl.reset t.conns;
              cs)
        in
        List.iter
          (fun c ->
            Mutex.protect c.wlock (fun () ->
                if c.fd_open then begin
                  c.fd_open <- false;
                  try Unix.close c.fd with _ -> ()
                end))
          leftovers;
        (* 6. the query plane is quiesced: take down the observability
           plane last — it stayed up through the whole drain on purpose,
           so /healthz visibly reported 503 while requests were being
           retired — and close the request logs *)
        (match t.gateway with Some g -> Obs_gateway.stop g | None -> ());
        t.gateway <- None;
        (match t.access_oc with
        | Some oc -> ( try close_out oc with _ -> ())
        | None -> ());
        (match t.slow_oc with
        | Some oc -> ( try close_out oc with _ -> ())
        | None -> ());
        (* 7. the evaluator is gone, so no run is in flight: join the
           parked worker domains the resident pool accumulated (an
           optional courtesy — a later server in the same process would
           simply respawn them) *)
        Pool.shutdown_all ();
        t.discarded_total <- !discarded;
        !discarded
      end)
