(** The [ucqc serve] daemon.  See the interface for the architecture and
    failure model; the comments here cover the mechanics.

    Locking discipline (ordering, to stay deadlock-free):
    [stop_lock] > [conns_lock] > per-connection [wlock].  No code path
    takes them in the other direction, and nothing blocks while holding
    [wlock] except the bounded (send-timeout) response write.

    File-descriptor lifetime: a connection's fd is closed exactly once,
    by whichever party ([conn] reader thread, evaluator release, or the
    drain sequence) observes [reader_done && pending = 0] first — all
    under [wlock], so a closed descriptor number recycled by the kernel
    is never touched again through a stale [conn]. *)

type listen = Unix_socket of string | Tcp of { host : string; port : int }

type config = {
  listen : listen;
  jobs : int;
  queue_depth : int;
  max_frame_bytes : int;
  idle_timeout_s : float;
  request_timeout_s : float option;
  max_steps_cap : int option;
  cache_capacity : int;
  drain_deadline_s : float;
  max_connections : int;
}

let default_config ~listen ~jobs =
  {
    listen;
    jobs;
    queue_depth = 64;
    max_frame_bytes = 1 lsl 20;
    idle_timeout_s = 300.;
    request_timeout_s = Some 30.;
    max_steps_cap = None;
    cache_capacity = 256;
    drain_deadline_s = 5.;
    max_connections = 128;
  }

(* Poll tick for every blocking wait (accept select, read timeout): the
   worst-case latency from a stop request to every loop noticing it. *)
let tick_s = 0.25

(* A response write to a client that has stopped reading gives up after
   this long; the client is then treated as dead.  Bounds how long the
   evaluator can be held hostage by a slow reader. *)
let write_timeout_s = 5.0

(* [classify] runs the exact (unbudgeted) treewidth engine on the
   combined query; gate it by total variable count so serve mode cannot
   be wedged by one adversarial classify request.  Matches the CLI's
   treewidth size gate. *)
let classify_var_gate = 20

(* ------------------------------------------------------------------ *)
(* Telemetry counters (interned once; no-ops when telemetry is off)   *)
(* ------------------------------------------------------------------ *)

let c_connections = Telemetry.counter "serve.connections"
let c_requests = Telemetry.counter "serve.requests"
let c_ok = Telemetry.counter "serve.responses.ok"
let c_degraded = Telemetry.counter "serve.responses.degraded"
let c_errors = Telemetry.counter "serve.responses.error"
let c_shed = Telemetry.counter "serve.shed"
let c_malformed = Telemetry.counter "serve.frames.malformed"
let c_oversized = Telemetry.counter "serve.frames.oversized"
let c_cache_hit = Telemetry.counter "serve.cache.hit"
let c_cache_interned = Telemetry.counter "serve.cache.interned"
let c_cache_miss = Telemetry.counter "serve.cache.miss"
let c_cache_invalid = Telemetry.counter "serve.cache.invalid"
let c_idle_closed = Telemetry.counter "serve.idle_closed"
let c_discarded = Telemetry.counter "serve.discarded"

(* ------------------------------------------------------------------ *)
(* State                                                              *)
(* ------------------------------------------------------------------ *)

(* The server's own stats live in atomics (the [stats] op must work with
   telemetry disabled); each bump also feeds the telemetry counter of
   the same name for [--metrics]. *)
type stats = {
  connections_total : int Atomic.t;
  connections_active : int Atomic.t;
  requests_total : int Atomic.t;
  responses_ok : int Atomic.t;
  responses_degraded : int Atomic.t;
  responses_error : int Atomic.t;
  shed : int Atomic.t;
  frames_malformed : int Atomic.t;
  frames_oversized : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_interned : int Atomic.t;
  cache_misses : int Atomic.t;
  cache_invalid : int Atomic.t;
  cache_entries : int Atomic.t;  (* gauge, maintained by the evaluator *)
  idle_closed : int Atomic.t;
  discarded : int Atomic.t;
}

let make_stats () =
  {
    connections_total = Atomic.make 0;
    connections_active = Atomic.make 0;
    requests_total = Atomic.make 0;
    responses_ok = Atomic.make 0;
    responses_degraded = Atomic.make 0;
    responses_error = Atomic.make 0;
    shed = Atomic.make 0;
    frames_malformed = Atomic.make 0;
    frames_oversized = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_interned = Atomic.make 0;
    cache_misses = Atomic.make 0;
    cache_invalid = Atomic.make 0;
    cache_entries = Atomic.make 0;
    idle_closed = Atomic.make 0;
    discarded = Atomic.make 0;
  }

let bump (a : int Atomic.t) (c : Telemetry.counter) : unit =
  Atomic.incr a;
  Telemetry.incr c

type conn = {
  cid : int;
  fd : Unix.file_descr;
  wlock : Mutex.t;
  mutable fd_open : bool;  (* guarded by wlock *)
  mutable reader_done : bool;  (* guarded by wlock *)
  mutable pending : int;  (* responses the evaluator still owes; wlock *)
}

type work = {
  wid : Trace_json.t option;
  wop : Protocol.op;
  wconn : conn;
  enqueued_at : float;
}

type t = {
  cfg : config;
  db : Structure.t;
  pool : Pool.t;
  listen_fd : Unix.file_descr;
  queue : work Admission.t;
  stats : stats;
  started_at : float;
  stop_requested_flag : bool Atomic.t;
  stopping : bool Atomic.t;
  stop_signal : int Atomic.t;  (* 0 = none *)
  evaluator_done : bool Atomic.t;
  current_budget : Budget.t option Atomic.t;
  next_cid : int Atomic.t;
  conns : (int, conn) Hashtbl.t;  (* guarded by conns_lock *)
  conns_lock : Mutex.t;
  mutable threads : Thread.t list;  (* conn threads; conns_lock *)
  mutable acceptor : Thread.t option;
  mutable evaluator : Thread.t option;
  stop_lock : Mutex.t;
  mutable stopped : bool;  (* guarded by stop_lock *)
  mutable discarded_total : int;  (* guarded by stop_lock *)
}

let draining (t : t) : bool =
  Atomic.get t.stop_requested_flag || Atomic.get t.stopping

(* ------------------------------------------------------------------ *)
(* Response plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let num (i : int) = Trace_json.Num (float_of_int i)
let fnum (f : float) = Trace_json.Num f

(* Write one response frame.  Best-effort: a dead or stalled client
   (EPIPE, send timeout) silently loses the response — its connection is
   torn down by the reader side shortly after. *)
let send (c : conn) (resp : Protocol.response) : unit =
  let line = Protocol.to_string resp in
  Mutex.protect c.wlock (fun () ->
      if c.fd_open then
        try
          let len = String.length line in
          let pos = ref 0 in
          while !pos < len do
            let n = Unix.write_substring c.fd line !pos (len - !pos) in
            if n <= 0 then raise Exit;
            pos := !pos + n
          done
        with _ -> ())

(* Close the fd exactly once, when both the reader is done and no
   evaluator response is outstanding. *)
let close_if_done (t : t) (c : conn) : unit =
  let close_now =
    Mutex.protect c.wlock (fun () ->
        if c.fd_open && c.reader_done && c.pending = 0 then begin
          c.fd_open <- false;
          true
        end
        else false)
  in
  if close_now then begin
    (try Unix.close c.fd with _ -> ());
    Mutex.protect t.conns_lock (fun () -> Hashtbl.remove t.conns c.cid)
  end

let release (t : t) (c : conn) : unit =
  Mutex.protect c.wlock (fun () -> c.pending <- c.pending - 1);
  close_if_done t c

let shutting_down_response ?id () : Protocol.response =
  Protocol.make_response ?id Protocol.Shutting_down
    [ ("message", Trace_json.Str "server is draining; reconnect later") ]

let count_response_status (t : t) (r : Protocol.response) : unit =
  match r.Protocol.rstatus with
  | Protocol.Ok_ -> bump t.stats.responses_ok c_ok
  | Protocol.Degraded -> bump t.stats.responses_degraded c_degraded
  | Protocol.Error_ -> bump t.stats.responses_error c_errors
  | Protocol.Overloaded | Protocol.Shutting_down -> ()

(* ------------------------------------------------------------------ *)
(* Inline ops (answered on the connection thread)                     *)
(* ------------------------------------------------------------------ *)

let uptime_ms (t : t) : float = (Unix.gettimeofday () -. t.started_at) *. 1000.

let pong (t : t) ?id () : Protocol.response =
  Protocol.make_response ?id Protocol.Ok_
    [ ("pong", Trace_json.Bool true); ("uptime_ms", fnum (uptime_ms t)) ]

let stats_response (t : t) ?id () : Protocol.response =
  let s = t.stats in
  let g a = num (Atomic.get a) in
  Protocol.make_response ?id Protocol.Ok_
    [
      ( "result",
        Trace_json.Obj
          [
            ("uptime_ms", fnum (uptime_ms t));
            ("jobs", num (Pool.jobs t.pool));
            (* resident-pool health: a steady server holds the spawn
               count constant while requests are served — if it grows
               per request, domain reuse is broken *)
            ("pool_domains_spawned", num (Pool.spawn_count ()));
            ("pool_domains_idle", num (Pool.idle_count ()));
            ("connections_total", g s.connections_total);
            ("connections_active", g s.connections_active);
            ("requests_total", g s.requests_total);
            ("responses_ok", g s.responses_ok);
            ("responses_degraded", g s.responses_degraded);
            ("responses_error", g s.responses_error);
            ("shed", g s.shed);
            ("frames_malformed", g s.frames_malformed);
            ("frames_oversized", g s.frames_oversized);
            ("idle_closed", g s.idle_closed);
            ("discarded", g s.discarded);
            ("queue_depth", num (Admission.depth t.queue));
            ( "cache",
              Trace_json.Obj
                [
                  ("hits", g s.cache_hits);
                  ("interned", g s.cache_interned);
                  ("misses", g s.cache_misses);
                  ("invalid", g s.cache_invalid);
                  ("entries", g s.cache_entries);
                ] );
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Evaluator                                                          *)
(* ------------------------------------------------------------------ *)

let runner_method : Protocol.count_method -> Runner.count_method = function
  | Protocol.Expansion -> Runner.Expansion
  | Protocol.Inclusion_exclusion -> Runner.Inclusion_exclusion
  | Protocol.Naive -> Runner.Naive

let op_label : Protocol.op -> string = function
  | Protocol.Ping -> "ping"
  | Protocol.Stats -> "stats"
  | Protocol.Count _ -> "count"
  | Protocol.Classify _ -> "classify"
  | Protocol.Check _ -> "check"

(* Effective budget = min(per-request ask, server cap); absent on both
   sides means unlimited.  The budget is created at dequeue time, so
   time spent queued never counts against the compute allowance. *)
let cap_steps (t : t) (req : int option) : int option =
  match (t.cfg.max_steps_cap, req) with
  | None, r -> r
  | (Some _ as c), None -> c
  | Some c, Some r -> Some (min c r)

let cap_timeout (t : t) (req_ms : float option) : float option =
  let req_s = Option.map (fun ms -> ms /. 1000.) req_ms in
  match (t.cfg.request_timeout_s, req_s) with
  | None, r -> r
  | (Some _ as c), None -> c
  | Some c, Some r -> Some (Float.min c r)

(* Cache lookup with the parse metered under its own span — a repeated
   query's trace visibly has no [serve.parse] (the acceptance criterion
   for the prepared-query cache). *)
let prepare (t : t) (cache : Cache.t) (text : string) : Cache.outcome =
  let outcome =
    match Cache.find cache text with
    | Some o -> o
    | None ->
        let parsed =
          Telemetry.with_span "serve.parse" (fun () ->
              match Parse.ucq_result text with
              | r -> r
              | exception e ->
                  Error (Ucqc_error.Internal (Printexc.to_string e)))
        in
        Cache.admit cache text parsed
  in
  (match outcome with
  | Cache.Hit _ -> bump t.stats.cache_hits c_cache_hit
  | Cache.Interned _ -> bump t.stats.cache_interned c_cache_interned
  | Cache.Miss _ -> bump t.stats.cache_misses c_cache_miss
  | Cache.Invalid _ -> bump t.stats.cache_invalid c_cache_invalid);
  Atomic.set t.stats.cache_entries (Cache.entries cache);
  outcome

let abandoned_json (a : Runner.abandoned) : Trace_json.t =
  Trace_json.Obj
    [
      ("phase", Trace_json.Str a.Runner.phase);
      ("steps", num a.Runner.steps);
      ("elapsed_s", fnum a.Runner.elapsed_s);
    ]

let answer_count (t : t) (cache : Cache.t) ?id ~query ~meth ~seed ~max_steps
    ~timeout_ms ~no_fallback () : Protocol.response =
  let outcome = prepare t cache query in
  let cache_field = ("cache", Trace_json.Str (Cache.outcome_label outcome)) in
  match outcome with
  | Cache.Invalid err ->
      let r = Protocol.of_ucqc_error ?id err in
      { r with Protocol.body = r.Protocol.body @ [ cache_field ] }
  | Cache.Hit entry | Cache.Interned entry | Cache.Miss entry ->
      let budget =
        Budget.make
          ?max_steps:(cap_steps t max_steps)
          ?timeout:(cap_timeout t timeout_ms)
          ()
      in
      (* Published so a forced drain can cancel this request
         cooperatively; cleared before the response is built. *)
      Atomic.set t.current_budget (Some budget);
      let result =
        Fun.protect
          ~finally:(fun () -> Atomic.set t.current_budget None)
          (fun () ->
            Telemetry.with_span "serve.eval" ~budget (fun () ->
                Runner.count ~via:(runner_method meth)
                  ~fallback:(not no_fallback) ~seed ~pool:t.pool ~budget
                  entry.Cache.ucq t.db))
      in
      let steps_field = ("steps", num (Budget.steps_done budget)) in
      (match result with
      | Ok (Runner.Exact n) ->
          Protocol.make_response ?id Protocol.Ok_
            [
              ( "result",
                Trace_json.Obj
                  [ ("count", num n); ("exact", Trace_json.Bool true) ] );
              cache_field;
              steps_field;
            ]
      | Ok (Runner.Approximate { value; epsilon; delta; exhausted; abandoned })
        ->
          Protocol.make_response ?id Protocol.Degraded
            [
              ( "result",
                Trace_json.Obj
                  [
                    ("estimate", fnum value);
                    ("epsilon", fnum epsilon);
                    ("delta", fnum delta);
                    ("exact", Trace_json.Bool false);
                    ( "exhausted",
                      Trace_json.Obj
                        [
                          ("phase", Trace_json.Str exhausted.Budget.phase);
                          ("steps_done", num exhausted.Budget.steps_done);
                        ] );
                    ("abandoned", abandoned_json abandoned);
                  ] );
              cache_field;
              steps_field;
            ]
      | Error err ->
          let r = Protocol.of_ucqc_error ?id err in
          { r with Protocol.body = r.Protocol.body @ [ cache_field; steps_field ] })

let classify_json (r : Classify.report) : Trace_json.t =
  Trace_json.Obj
    [
      ("combined_tw", num r.Classify.combined_tw);
      ("combined_contract_tw", num r.Classify.combined_contract_tw);
      ("gamma_max_tw", num r.Classify.gamma_max_tw);
      ("gamma_max_contract_tw", num r.Classify.gamma_max_contract_tw);
      ("quantifier_free", Trace_json.Bool r.Classify.quantifier_free);
      ( "union_of_self_join_free",
        Trace_json.Bool r.Classify.union_of_self_join_free );
      ("num_quantified", num r.Classify.num_quantified);
      ("num_disjuncts", num r.Classify.num_disjuncts);
    ]

let answer_classify (t : t) (cache : Cache.t) ?id ~query () :
    Protocol.response =
  let outcome = prepare t cache query in
  let cache_field = ("cache", Trace_json.Str (Cache.outcome_label outcome)) in
  match outcome with
  | Cache.Invalid err ->
      let r = Protocol.of_ucqc_error ?id err in
      { r with Protocol.body = r.Protocol.body @ [ cache_field ] }
  | Cache.Hit entry | Cache.Interned entry | Cache.Miss entry ->
      let vars =
        Ucq.arity entry.Cache.ucq + Ucq.num_quantified entry.Cache.ucq
      in
      if vars > classify_var_gate then begin
        (* classify runs the exact treewidth engine unbudgeted; in serve
           mode that must not be reachable with unbounded input *)
        let r =
          Protocol.error_response ?id ~kind:"unsupported" ~code:65
            (Printf.sprintf
               "classify is limited to %d total variables in serve mode \
                (query has %d); use the one-shot CLI"
               classify_var_gate vars)
        in
        { r with Protocol.body = r.Protocol.body @ [ cache_field ] }
      end
      else
        let report =
          match entry.Cache.classify with
          | Some r -> r
          | None ->
              let r =
                Telemetry.with_span "serve.analysis" (fun () ->
                    Classify.analyze ~with_gamma:false ~pool:t.pool
                      entry.Cache.ucq)
              in
              entry.Cache.classify <- Some r;
              r
        in
        Protocol.make_response ?id Protocol.Ok_
          [ ("result", classify_json report); cache_field ]

let answer_check (t : t) (cache : Cache.t) ?id ~query () : Protocol.response =
  let outcome = prepare t cache query in
  let cache_field = ("cache", Trace_json.Str (Cache.outcome_label outcome)) in
  (* [Analysis.check] is total (parse failures become diagnostics) and
     budgeted internally, so even an Invalid outcome gets a report.  The
     report is memoized only for the entry's primary spelling: spans are
     text-relative, so an alias text must be re-analyzed. *)
  let memoized (entry : Cache.entry) : Analysis.report option =
    if String.equal entry.Cache.primary_text query then begin
      (match entry.Cache.analysis with
      | Some _ -> ()
      | None ->
          entry.Cache.analysis <-
            Some
              (Telemetry.with_span "serve.analysis" (fun () ->
                   Analysis.check ~pool:t.pool query)));
      entry.Cache.analysis
    end
    else None
  in
  let report =
    match outcome with
    | Cache.Hit e | Cache.Interned e | Cache.Miss e -> (
        match memoized e with
        | Some r -> r
        | None ->
            Telemetry.with_span "serve.analysis" (fun () ->
                Analysis.check ~pool:t.pool query))
    | Cache.Invalid _ ->
        Telemetry.with_span "serve.analysis" (fun () ->
            Analysis.check ~pool:t.pool query)
  in
  let max_sev =
    match Analysis.max_severity report with
    | None -> Trace_json.Null
    | Some s -> Trace_json.Str (Diagnostic.severity_to_string s)
  in
  Protocol.make_response ?id Protocol.Ok_
    [
      ("result", Analysis.report_to_json report);
      ("findings", num (List.length report.Analysis.diagnostics));
      ("max_severity", max_sev);
      cache_field;
    ]

let answer (t : t) (cache : Cache.t) (w : work) : Protocol.response =
  match w.wop with
  | Protocol.Ping -> pong t ?id:w.wid ()  (* unreachable: answered inline *)
  | Protocol.Stats -> stats_response t ?id:w.wid ()
  | Protocol.Count { query; meth; seed; max_steps; timeout_ms; no_fallback } ->
      answer_count t cache ?id:w.wid ~query ~meth ~seed ~max_steps ~timeout_ms
        ~no_fallback ()
  | Protocol.Classify { query } ->
      answer_classify t cache ?id:w.wid ~query ()
  | Protocol.Check { query } -> answer_check t cache ?id:w.wid ~query ()

(* Per-request isolation boundary: nothing thrown while answering one
   request may reach the evaluator loop. *)
let process (t : t) (cache : Cache.t) (w : work) : unit =
  let t0 = Unix.gettimeofday () in
  let queue_ms = (t0 -. w.enqueued_at) *. 1000. in
  let resp =
    try
      Telemetry.with_span "serve.request"
        ~attrs:(fun () -> [ ("op", Telemetry.S (op_label w.wop)) ])
        (fun () -> answer t cache w)
    with e ->
      Protocol.error_response ?id:w.wid ~kind:"internal" ~code:70
        (Printf.sprintf "request failed: %s" (Printexc.to_string e))
  in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Admission.note_service_ms t.queue elapsed_ms;
  let resp =
    {
      resp with
      Protocol.body =
        resp.Protocol.body
        @ [ ("elapsed_ms", fnum elapsed_ms); ("queue_ms", fnum queue_ms) ];
    }
  in
  count_response_status t resp;
  send w.wconn resp;
  release t w.wconn

let evaluator_loop (t : t) : unit =
  let cache = Cache.create ~capacity:t.cfg.cache_capacity () in
  let rec loop () =
    match Admission.take t.queue with
    | None -> ()
    | Some w ->
        process t cache w;
        loop ()
  in
  (try loop () with _ -> ());
  Atomic.set t.evaluator_done true

(* ------------------------------------------------------------------ *)
(* Connection threads                                                 *)
(* ------------------------------------------------------------------ *)

let handle_request (t : t) (c : conn) (line : string) : unit =
  bump t.stats.requests_total c_requests;
  match Protocol.parse_request line with
  | Error e ->
      bump t.stats.frames_malformed c_malformed;
      bump t.stats.responses_error c_errors;
      send c (Protocol.of_req_error e)
  | Ok { Protocol.id; op } -> (
      match op with
      | Protocol.Ping ->
          bump t.stats.responses_ok c_ok;
          send c (pong t ?id ())
      | Protocol.Stats ->
          bump t.stats.responses_ok c_ok;
          send c (stats_response t ?id ())
      | Protocol.Count _ | Protocol.Classify _ | Protocol.Check _ ->
          if draining t then send c (shutting_down_response ?id ())
          else begin
            Mutex.protect c.wlock (fun () -> c.pending <- c.pending + 1);
            let w =
              { wid = id; wop = op; wconn = c; enqueued_at = Unix.gettimeofday () }
            in
            match Admission.offer t.queue w with
            | Admission.Accepted -> ()
            | Admission.Shed { retry_after_ms } ->
                Mutex.protect c.wlock (fun () -> c.pending <- c.pending - 1);
                bump t.stats.shed c_shed;
                send c
                  (Protocol.make_response ?id Protocol.Overloaded
                     [
                       ("retry_after_ms", num retry_after_ms);
                       ("message", Trace_json.Str "admission queue is full");
                     ])
            | Admission.Draining ->
                Mutex.protect c.wlock (fun () -> c.pending <- c.pending - 1);
                send c (shutting_down_response ?id ())
          end)

let handle_frame (t : t) (c : conn) (fr : Framer.frame) : unit =
  match fr with
  | Framer.Oversized limit ->
      bump t.stats.frames_oversized c_oversized;
      bump t.stats.responses_error c_errors;
      send c (Protocol.of_req_error (Protocol.Frame_too_large limit))
  | Framer.Frame line -> if String.trim line <> "" then handle_request t c line

let conn_loop (t : t) (c : conn) : unit =
  (try
     Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO tick_s;
     Unix.setsockopt_float c.fd Unix.SO_SNDTIMEO write_timeout_s
   with _ -> ());
  let framer = Framer.create ~max_frame_bytes:t.cfg.max_frame_bytes () in
  let buf = Bytes.create 8192 in
  let idle_deadline = ref (Unix.gettimeofday () +. t.cfg.idle_timeout_s) in
  let running = ref true in
  while !running do
    if Atomic.get t.stopping then running := false
    else
      match Unix.read c.fd buf 0 (Bytes.length buf) with
      | 0 ->
          (* client EOF; a final unterminated line still gets answered *)
          (match Framer.eof framer with
          | Some fr -> handle_frame t c fr
          | None -> ());
          running := false
      | n ->
          idle_deadline := Unix.gettimeofday () +. t.cfg.idle_timeout_s;
          List.iter (handle_frame t c) (Framer.feed framer buf ~off:0 ~len:n)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          if Unix.gettimeofday () > !idle_deadline then begin
            bump t.stats.idle_closed c_idle_closed;
            running := false
          end
      | exception _ -> running := false
  done;
  Mutex.protect c.wlock (fun () -> c.reader_done <- true);
  Atomic.decr t.stats.connections_active;
  close_if_done t c

(* ------------------------------------------------------------------ *)
(* Accept loop                                                        *)
(* ------------------------------------------------------------------ *)

let accept_one (t : t) (fd : Unix.file_descr) : unit =
  bump t.stats.connections_total c_connections;
  let active = Atomic.fetch_and_add t.stats.connections_active 1 in
  if active >= t.cfg.max_connections then begin
    Atomic.decr t.stats.connections_active;
    bump t.stats.shed c_shed;
    (* shed at accept: one well-formed frame, then hang up *)
    let line =
      Protocol.to_string
        (Protocol.make_response Protocol.Overloaded
           [
             ("retry_after_ms", num 1000);
             ("message", Trace_json.Str "connection limit reached");
           ])
    in
    (try
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0;
       ignore (Unix.write_substring fd line 0 (String.length line))
     with _ -> ());
    try Unix.close fd with _ -> ()
  end
  else begin
    (match t.cfg.listen with
    | Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ())
    | Unix_socket _ -> ());
    let c =
      {
        cid = Atomic.fetch_and_add t.next_cid 1;
        fd;
        wlock = Mutex.create ();
        fd_open = true;
        reader_done = false;
        pending = 0;
      }
    in
    Mutex.protect t.conns_lock (fun () -> Hashtbl.replace t.conns c.cid c);
    let th =
      Thread.create
        (fun () ->
          try conn_loop t c
          with _ ->
            (* belt and braces: a crashed reader must still release *)
            Mutex.protect c.wlock (fun () -> c.reader_done <- true);
            Atomic.decr t.stats.connections_active;
            close_if_done t c)
        ()
    in
    Mutex.protect t.conns_lock (fun () -> t.threads <- th :: t.threads)
  end

let accept_loop (t : t) : unit =
  while not (draining t) do
    match Unix.select [ t.listen_fd ] [] [] tick_s with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ -> accept_one t fd
        | exception
            Unix.Unix_error
              ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) ->
            ()
        | exception _ -> ())
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception _ ->
        (* listen fd went bad; without it the loop has no purpose, but
           never spin *)
        if not (draining t) then Thread.delay tick_s
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

let bind_listen (l : listen) : Unix.file_descr =
  match l with
  | Unix_socket path ->
      (* reclaim a stale socket file, but never unlink anything else *)
      (match Unix.stat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> ( try Unix.unlink path with _ -> ())
      | _ ->
          raise
            (Unix.Unix_error (Unix.EEXIST, "bind", path))
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 128
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      fd
  | Tcp { host; port } ->
      let addr =
        try Unix.inet_addr_of_string host
        with _ -> (
          match
            Unix.getaddrinfo host ""
              [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
          with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> raise (Unix.Unix_error (Unix.EINVAL, "getaddrinfo", host)))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (addr, port));
         Unix.listen fd 128
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      fd

let start (cfg : config) ~(db : Structure.t) : t =
  (* a client hanging up mid-write must be an EPIPE, not a process kill *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let listen_fd = bind_listen cfg.listen in
  let t =
    {
      cfg;
      db;
      pool = Pool.create ~jobs:cfg.jobs ();
      listen_fd;
      queue = Admission.create ~depth:cfg.queue_depth ();
      stats = make_stats ();
      started_at = Unix.gettimeofday ();
      stop_requested_flag = Atomic.make false;
      stopping = Atomic.make false;
      stop_signal = Atomic.make 0;
      evaluator_done = Atomic.make false;
      current_budget = Atomic.make None;
      next_cid = Atomic.make 1;
      conns = Hashtbl.create 64;
      conns_lock = Mutex.create ();
      threads = [];
      acceptor = None;
      evaluator = None;
      stop_lock = Mutex.create ();
      stopped = false;
      discarded_total = 0;
    }
  in
  t.evaluator <- Some (Thread.create (fun () -> evaluator_loop t) ());
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let request_stop (t : t) : unit = Atomic.set t.stop_requested_flag true
let stop_requested (t : t) : bool = Atomic.get t.stop_requested_flag

let install_signal_stop (t : t) : unit =
  let handler signal =
    (* signal-handler safe: two atomic stores, nothing else *)
    Atomic.set t.stop_signal signal;
    request_stop t
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handler)

let last_signal (t : t) : int option =
  match Atomic.get t.stop_signal with 0 -> None | s -> Some s

let wait_until_stop_requested (t : t) : unit =
  while not (stop_requested t) do
    Thread.delay 0.1
  done

let stop (t : t) : int =
  Mutex.protect t.stop_lock (fun () ->
      if t.stopped then t.discarded_total
      else begin
        t.stopped <- true;
        Atomic.set t.stop_requested_flag true;
        Atomic.set t.stopping true;
        (* 1. stop accepting *)
        (match t.acceptor with Some th -> Thread.join th | None -> ());
        t.acceptor <- None;
        (try Unix.close t.listen_fd with _ -> ());
        (match t.cfg.listen with
        | Unix_socket p -> ( try Unix.unlink p with _ -> ())
        | Tcp _ -> ());
        (* 2. close admission; the evaluator retires the backlog *)
        Admission.close t.queue;
        let deadline = Unix.gettimeofday () +. t.cfg.drain_deadline_s in
        while
          (not (Atomic.get t.evaluator_done))
          && Unix.gettimeofday () < deadline
        do
          Thread.delay 0.01
        done;
        let discarded = ref 0 in
        if not (Atomic.get t.evaluator_done) then begin
          (* 3. deadline exceeded: answer the backlog with
             [shutting_down] and cancel the in-flight request *)
          let dropped = Admission.discard_pending t.queue in
          List.iter
            (fun w ->
              incr discarded;
              bump t.stats.discarded c_discarded;
              send w.wconn (shutting_down_response ?id:w.wid ());
              release t w.wconn)
            dropped;
          (match Atomic.get t.current_budget with
          | Some b -> Budget.cancel b
          | None -> ());
          (* grace for the cancelled request to unwind cooperatively *)
          let grace =
            Unix.gettimeofday () +. Float.max 1.0 t.cfg.drain_deadline_s
          in
          while
            (not (Atomic.get t.evaluator_done))
            && Unix.gettimeofday () < grace
          do
            Thread.delay 0.01
          done
        end;
        if Atomic.get t.evaluator_done then (
          (match t.evaluator with Some th -> Thread.join th | None -> ());
          t.evaluator <- None);
        (* 4. wake blocked readers and join connection threads *)
        let conns =
          Mutex.protect t.conns_lock (fun () ->
              Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
        in
        List.iter
          (fun c ->
            Mutex.protect c.wlock (fun () ->
                if c.fd_open then
                  try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with _ -> ()))
          conns;
        let threads =
          Mutex.protect t.conns_lock (fun () ->
              let ths = t.threads in
              t.threads <- [];
              ths)
        in
        List.iter (fun th -> try Thread.join th with _ -> ()) threads;
        (* 5. anything still open (a response the evaluator never
           delivered): close unconditionally *)
        let leftovers =
          Mutex.protect t.conns_lock (fun () ->
              let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
              Hashtbl.reset t.conns;
              cs)
        in
        List.iter
          (fun c ->
            Mutex.protect c.wlock (fun () ->
                if c.fd_open then begin
                  c.fd_open <- false;
                  try Unix.close c.fd with _ -> ()
                end))
          leftovers;
        (* 6. the evaluator is gone, so no run is in flight: join the
           parked worker domains the resident pool accumulated (an
           optional courtesy — a later server in the same process would
           simply respawn them) *)
        Pool.shutdown_all ();
        t.discarded_total <- !discarded;
        !discarded
      end)
