(** Newline framing with a size bound.  See the interface. *)

type t = {
  max_frame_bytes : int;
  buf : Buffer.t;
  mutable discarding : bool;
      (* the current frame already blew the limit: drop bytes until the
         next newline, then report it once *)
  mutable discarded : int; (* bytes dropped of the oversized frame *)
}

type frame = Frame of string | Oversized of int

let create ~max_frame_bytes () : t =
  if max_frame_bytes < 1 then
    invalid_arg "Framer.create: max_frame_bytes must be positive";
  {
    max_frame_bytes;
    buf = Buffer.create (min max_frame_bytes 4096);
    discarding = false;
    discarded = 0;
  }

let strip_cr (s : string) : string =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let feed (t : t) (bytes : bytes) ~(off : int) ~(len : int) : frame list =
  let out = ref [] in
  for i = off to off + len - 1 do
    let c = Bytes.get bytes i in
    if t.discarding then begin
      if c = '\n' then begin
        out := Oversized t.max_frame_bytes :: !out;
        t.discarding <- false;
        t.discarded <- 0
      end
      else t.discarded <- t.discarded + 1
    end
    else if c = '\n' then begin
      out := Frame (strip_cr (Buffer.contents t.buf)) :: !out;
      Buffer.clear t.buf
    end
    else begin
      Buffer.add_char t.buf c;
      if Buffer.length t.buf > t.max_frame_bytes then begin
        Buffer.clear t.buf;
        t.discarding <- true;
        t.discarded <- t.max_frame_bytes + 1
      end
    end
  done;
  List.rev !out

let pending (t : t) : int =
  if t.discarding then t.discarded else Buffer.length t.buf

let eof (t : t) : frame option =
  if t.discarding then begin
    t.discarding <- false;
    t.discarded <- 0;
    Some (Oversized t.max_frame_bytes)
  end
  else if Buffer.length t.buf > 0 then begin
    let s = strip_cr (Buffer.contents t.buf) in
    Buffer.clear t.buf;
    Some (Frame s)
  end
  else None
