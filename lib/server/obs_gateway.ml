(** The metrics HTTP sidecar.  See the interface for the contract.

    One thread, one connection at a time: a scrape is a read of a few
    hundred bytes and a write of a few kilobytes, so serving inline
    keeps the gateway free of connection bookkeeping.  Per-connection
    receive/send timeouts bound how long a stalled scraper can hold the
    thread; the accept select uses the server's standard poll tick so a
    stop request is noticed promptly. *)

type reply = { status : int; content_type : string; body : string }

type t = {
  fd : Unix.file_descr;
  gport : int;
  stop_flag : bool Atomic.t;
  mutable thread : Thread.t option;
}

let tick_s = 0.25

(* A scraper that stalls mid-request or mid-response is cut off after
   this long; Prometheus scrape timeouts are typically 10 s, so 2 s of
   server-side patience is plenty for a localhost ops port. *)
let io_timeout_s = 2.0

let max_head_bytes = 8192

let read_head (fd : Unix.file_descr) : string option =
  let buf = Bytes.create 1024 in
  let acc = Buffer.create 256 in
  let rec go () =
    if Buffer.length acc > max_head_bytes then None
    else if Microhttp.head_complete (Buffer.contents acc) then
      Some (Buffer.contents acc)
    else
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> if Buffer.length acc > 0 then Some (Buffer.contents acc) else None
      | n ->
          Buffer.add_subbytes acc buf 0 n;
          go ()
      | exception _ -> None
  in
  go ()

let write_all (fd : Unix.file_descr) (s : string) : unit =
  let len = String.length s in
  let pos = ref 0 in
  try
    while !pos < len do
      let n = Unix.write_substring fd s !pos (len - !pos) in
      if n <= 0 then raise Exit;
      pos := !pos + n
    done
  with _ -> ()

let serve_conn (handler : Microhttp.request -> reply)
    (fd : Unix.file_descr) : unit =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO io_timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO io_timeout_s
   with _ -> ());
  (match read_head fd with
  | None -> ()
  | Some head ->
      let out =
        match Microhttp.parse_request head with
        | Error msg -> Microhttp.response ~status:400 (msg ^ "\n")
        | Ok req -> (
            (* the handler reads shared server state; a bug there must
               produce a 500, never kill the gateway thread *)
            match handler req with
            | { status; content_type; body } ->
                Microhttp.response ~status ~content_type body
            | exception e ->
                Microhttp.response ~status:500
                  (Printf.sprintf "internal error: %s\n"
                     (Printexc.to_string e)))
      in
      write_all fd out);
  try Unix.close fd with _ -> ()

let gateway_loop (t : t) (handler : Microhttp.request -> reply) : unit =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.fd ] [] [] tick_s with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.fd with
        | fd, _ -> serve_conn handler fd
        | exception
            Unix.Unix_error
              ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) ->
            ()
        | exception _ -> ())
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception _ ->
        if not (Atomic.get t.stop_flag) then Thread.delay tick_s
  done

let start ~(host : string) ~(port : int)
    ~(handler : Microhttp.request -> reply) : t =
  let addr =
    try Unix.inet_addr_of_string host
    with _ -> (
      match
        Unix.getaddrinfo host ""
          [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> raise (Unix.Unix_error (Unix.EINVAL, "getaddrinfo", host)))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (addr, port));
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let gport =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t = { fd; gport; stop_flag = Atomic.make false; thread = None } in
  t.thread <- Some (Thread.create (fun () -> gateway_loop t handler) ());
  t

let port (t : t) : int = t.gport

let stop (t : t) : unit =
  if not (Atomic.get t.stop_flag) then begin
    Atomic.set t.stop_flag true;
    (match t.thread with Some th -> (try Thread.join th with _ -> ()) | None -> ());
    t.thread <- None;
    try Unix.close t.fd with _ -> ()
  end
