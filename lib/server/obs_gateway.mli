(** The observability HTTP sidecar behind [--metrics-addr].

    A tiny single-threaded HTTP/1.x listener that serves whatever the
    provided handler renders — for [ucqc serve]: [/metrics] (Prometheus
    text exposition), [/healthz] and [/readyz].  It runs on its own
    thread beside the accept loop and {e never} touches the evaluator:
    every value a handler reads is an atomic snapshot or a telemetry
    metric cell, so a scrape storm cannot add latency to query
    evaluation.

    TCP only (a Prometheus scraper speaks TCP even when the query plane
    listens on a Unix socket); bind to [port = 0] to let the kernel
    pick — {!port} reports the actual one.  The gateway stays up during
    a drain on purpose: [/healthz] flipping to 503 {e is} the drain
    signal operators watch.  {!stop} is called last in the server's
    shutdown sequence. *)

type reply = { status : int; content_type : string; body : string }

type t

(** [start ~host ~port ~handler] binds, listens, and spawns the gateway
    thread.  [handler] runs on that thread for every request; an
    exception from it becomes a 500 response.
    @raise Unix.Unix_error when the address cannot be bound. *)
val start :
  host:string -> port:int -> handler:(Microhttp.request -> reply) -> t

(** [port t] is the actual bound port (useful with [port = 0]). *)
val port : t -> int

(** [stop t] joins the gateway thread and closes the listener.
    Idempotent. *)
val stop : t -> unit
