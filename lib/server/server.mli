(** The [ucqc serve] daemon: a fault-tolerant long-running query service.

    Loads one [.facts] database and answers {!Protocol} requests over a
    Unix or TCP socket.  The database is a {!Delta.db} session: the
    universe and signature are fixed at load time, but tuples change
    through the [insert]/[delete]/[apply] mutation ops, each accepted
    change advancing a monotonically increasing {e epoch}.  Mutations
    are evaluated ops — they run on the single evaluator thread, which
    makes it the one ordering point for the database, the epoch, and
    every cached maintained state (tiered incremental counting: see
    {!Delta}).  The architecture is
    a deliberately boring thread layout chosen for isolation:

    - the {b main thread} runs the accept loop (select with a short tick
      so shutdown is prompt) and the drain sequence;
    - one {b connection thread} per client does framing, request
      parsing, inline [ping]/[stats] answers, and admission — it never
      evaluates a query and never records telemetry spans;
    - a single {b evaluator thread} owns the prepared-query {!Cache}
      and retires queued requests one at a time, fanning each one out on
      the domain {!Pool} ([--jobs]).  Being the only span-recording
      thread in the main domain keeps the telemetry buffers race-free —
      the same single-writer discipline {!Pool} imposes on its workers.

    Fault containment, layer by layer: oversized or malformed frames are
    answered with structured errors ({!Framer}/{!Protocol} are total);
    engine failures and budget exhaustion are contained per request by
    {!Runner}'s result boundaries plus a catch-all that converts any
    escape into an [internal] error response; a full queue sheds with
    [overloaded] + [retry_after_ms]; disconnected clients turn writes
    into no-ops (EPIPE is ignored, SIGPIPE masked); idle connections are
    closed after [idle_timeout_s].  Nothing a client sends can take the
    process down or corrupt another request's response: responses are
    written as single frames under a per-connection lock.

    Shutdown ({!stop}, or SIGINT/SIGTERM under {!install_signal_stop}):
    stop accepting, answer further requests with [shutting_down], retire
    the admitted backlog, and — past [drain_deadline_s] — cancel the
    in-flight request's budget (cooperative, via {!Budget.cancel}) and
    answer the rest with [shutting_down].  Telemetry flushing is the
    caller's job after {!stop} returns (the CLI shares the flush path
    with one-shot mode). *)

type listen = Unix_socket of string | Tcp of { host : string; port : int }

type config = {
  listen : listen;
  jobs : int;  (** domain-pool width for each evaluation *)
  queue_depth : int;  (** admission bound; beyond it requests are shed *)
  max_frame_bytes : int;  (** request frames larger than this are rejected *)
  idle_timeout_s : float;  (** close connections idle this long *)
  request_timeout_s : float option;
      (** per-request wall-clock cap and default ([None]: unlimited) *)
  max_steps_cap : int option;  (** per-request step cap ([None]: unlimited) *)
  cache_capacity : int;  (** prepared-query entries kept (0 disables) *)
  drain_deadline_s : float;  (** graceful-drain allowance on shutdown *)
  max_connections : int;  (** concurrent clients; excess is shed at accept *)
  metrics_addr : (string * int) option;
      (** bind an {!Obs_gateway} here ([host, port]; port 0 lets the
          kernel pick — see {!metrics_port}).  [None] disables the
          observability HTTP plane entirely. *)
  access_log : string option;
      (** append one JSON line per evaluated request to this file *)
  slow_query_log : string option;
      (** append one JSON line ({!Slowlog.entry}) per slow query *)
  slow_factor : float;
      (** a query is "slow" when its observed step count exceeds
          [slow_factor] times the {!Plan} cost prediction *)
  optimize : bool;
      (** apply the count-preserving cover optimizer ({!Optimize.run})
          to each prepared query, once, at prepare time.  The rewrite is
          cached on the entry; evaluation, maintained state, and cost
          prediction all use the optimized query.  Default [true]. *)
}

(** Defaults: 64-deep queue, 1 MiB frames, 300 s idle timeout, 30 s
    request timeout, 256 cache entries, 5 s drain deadline, 128
    connections, no metrics gateway, no request logs, slow factor 8,
    optimizer on. *)
val default_config : listen:listen -> jobs:int -> config

type t

(** [start ?env config ~db] binds the socket and spawns the accept and
    evaluator threads.  [env] is the constant-interning environment of
    the loaded [.facts] file, so mutation ops may use the same
    identifier constants; without it only integer constants resolve.
    @raise Unix.Unix_error when binding fails (the one fault that must
    be loud: the service cannot exist). *)
val start : ?env:Parse.db_env -> config -> db:Structure.t -> t

(** [metrics_port t] is the actual bound port of the metrics gateway
    ([None] when [metrics_addr] was [None]).  Useful with port 0. *)
val metrics_port : t -> int option

(** [request_stop t] flips the drain flag (signal-handler safe: one
    atomic store).  {!stop} performs the actual drain. *)
val request_stop : t -> unit

val stop_requested : t -> bool

(** [stop t] runs the drain sequence and joins the threads.  Idempotent.
    Returns the number of requests discarded past the deadline (0 on a
    fully graceful drain). *)
val stop : t -> int

(** [install_signal_stop t] routes SIGINT/SIGTERM to {!request_stop} and
    records the signal so the CLI can report it. *)
val install_signal_stop : t -> unit

(** [last_signal t] is the signal that triggered the stop, if any
    (e.g. [Sys.sigterm]) — the CLI maps it to exit 130/143. *)
val last_signal : t -> int option

(** [wait_until_stop_requested t] blocks (polling the flag) until
    {!request_stop} was called — the CLI's main wait. *)
val wait_until_stop_requested : t -> unit
