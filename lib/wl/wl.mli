(** The k-dimensional Weisfeiler–Leman algorithm on labelled graphs
    (Section 5).  For [k = 1] the classic colour-refinement algorithm is
    used; for [k ≥ 2] the substitution scheme on [k]-tuples.  Colour
    identifiers are derived from canonical history terms shared between
    runs, so two graphs can be compared round by round. *)

(** [is_labelled_graph d]: arity ≤ 2 and no self-loop tuples. *)
val is_labelled_graph : Structure.t -> bool

(** [equivalent ?budget ~k d1 d2] decides [D_1 ≅_k D_2]: equal colour
    histograms at every refinement round of a lockstep run.  The budget is
    ticked once per recoloured tuple per round.
    @raise Invalid_argument for [k < 1].
    @raise Budget.Exhausted when the budget runs out mid-refinement. *)
val equivalent : ?budget:Budget.t -> k:int -> Structure.t -> Structure.t -> bool

(** [colour_classes ?budget ~k d] is the number of stable colour classes. *)
val colour_classes : ?budget:Budget.t -> k:int -> Structure.t -> int
