(** The Weisfeiler–Leman algorithm on labelled graphs (Section 5).

    A database is a labelled graph when its signature has arity at most 2
    and it contains no self-loop tuples [(v, v)].  The [k]-dimensional WL
    algorithm colours [k]-tuples of vertices, starting from their atomic
    types and refining each round with the multiset of colour vectors
    obtained by substituting every vertex at every position.  Two labelled
    graphs are [k]-WL equivalent when the algorithm cannot distinguish them
    (Definition 6 rests on this notion).

    To make colours comparable across two separate runs, colour identifiers
    are assigned from the *canonical history term* of the colour (atomic
    type, then [Update (own, substitution multisets)]) in a table shared by
    both runs; identical defining terms always receive identical
    identifiers.  The equivalence test runs both graphs in lockstep and
    compares colour histograms each round. *)

(** [is_labelled_graph d] checks the Section 5 conditions: arity ≤ 2 and no
    tuple of the form [(v, v)]. *)
let is_labelled_graph (d : Structure.t) : bool =
  Signature.arity (Structure.signature d) <= 2
  && List.for_all
       (fun (_, ts) ->
         List.for_all
           (fun t -> match t with [ u; v ] -> u <> v | _ -> true)
           ts)
       (Structure.relations d)

(* A colour history term.  [Atom] terms are intrinsic descriptions of a
   tuple; [Update] terms record one refinement round of the k >= 2
   substitution scheme; [Update_nbr] records one round of classic colour
   refinement (the k = 1 algorithm), whose signature is the multiset of
   (relation, direction, neighbour colour) triples. *)
type term =
  | Atom of (int * int) list * (string * bool list) list
    (* equality pattern on position pairs; relation memberships over
       position vectors *)
  | Update of int * int list list
  | Update_nbr of int * (string * bool * int) list

(* ------------------------------------------------------------------ *)

type run_state = {
  universe : int array;
  tuples : int array array; (* all k-tuples over the universe *)
  mutable colours : int array; (* tuple index -> colour id *)
  index_of_tuple : (int list, int) Hashtbl.t;
}

let all_tuples (universe : int array) (k : int) : int array array =
  let n = Array.length universe in
  let total = int_of_float (float_of_int n ** float_of_int k) in
  Array.init total (fun code ->
      let t = Array.make k 0 in
      let c = ref code in
      for j = 0 to k - 1 do
        t.(j) <- universe.(!c mod n);
        c := !c / n
      done;
      t)

(** Atomic type of a tuple: equality pattern plus, for every relation
    symbol, the membership vector over all (ordered) position pairs /
    single positions. *)
let atomic_type (d : Structure.t) (t : int array) : term =
  let k = Array.length t in
  let equalities =
    List.concat
      (List.init k (fun p ->
           List.concat
             (List.init k (fun q ->
                  if p < q && t.(p) = t.(q) then [ (p, q) ] else []))))
  in
  let memberships =
    List.map
      (fun (name, ts) ->
        let arity = Signature.arity_of (Structure.signature d) name in
        let bits =
          if arity = 1 then
            List.concat (List.init k (fun p -> [ List.mem [ t.(p) ] ts ]))
          else if arity = 2 then
            List.concat
              (List.init k (fun p ->
                   List.init k (fun q -> List.mem [ t.(p); t.(q) ] ts)))
          else []
        in
        (name, bits))
      (Structure.relations d)
  in
  Atom (equalities, memberships)

let init_run (d : Structure.t) (k : int) : run_state =
  let universe = Array.of_list (Structure.universe d) in
  let tuples = all_tuples universe k in
  let index_of_tuple = Hashtbl.create (Array.length tuples) in
  Array.iteri
    (fun i t -> Hashtbl.replace index_of_tuple (Array.to_list t) i)
    tuples;
  { universe; tuples; colours = Array.make (Array.length tuples) 0; index_of_tuple }

(** One refinement round.

    For [k >= 2], the substitution scheme: the new colour term of tuple [w]
    is [Update (c(w), multiset over u of (c(w[1:=u]), ..., c(w[k:=u])))].

    For [k = 1], the substitution scheme degenerates (every vertex would
    see the same multiset), so we use classic colour refinement instead:
    the signature is the sorted multiset of (relation, direction,
    neighbour colour) triples over the binary relations [d]. *)
let round_term (d : Structure.t) (s : run_state) (k : int) (i : int) : term =
  if k = 1 then begin
    let v = s.tuples.(i).(0) in
    let colour_of u = s.colours.(Hashtbl.find s.index_of_tuple [ u ]) in
    let nbrs =
      List.concat_map
        (fun (name, ts) ->
          List.concat_map
            (fun t ->
              match t with
              | [ a; b ] ->
                  (if a = v then [ (name, false, colour_of b) ] else [])
                  @ if b = v then [ (name, true, colour_of a) ] else []
              | _ -> [])
            ts)
        (Structure.relations d)
    in
    Update_nbr (s.colours.(i), List.sort compare nbrs)
  end
  else begin
    let w = s.tuples.(i) in
    let vectors =
      Array.to_list
        (Array.map
           (fun u ->
             List.init k (fun j ->
                 let w' = Array.copy w in
                 w'.(j) <- u;
                 s.colours.(Hashtbl.find s.index_of_tuple (Array.to_list w'))))
           s.universe)
    in
    Update (s.colours.(i), List.sort compare vectors)
  end

(** Colour histogram (multiset of colours) of a run. *)
let histogram (s : run_state) : (int * int) list =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    s.colours;
  List.sort compare (Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl [])

(** Number of distinct colours in a run. *)
let num_colours (s : run_state) : int =
  List.length (List.sort_uniq compare (Array.to_list s.colours))

(** [refine_lockstep k states assign_term] performs rounds on all runs with
    a shared term → identifier table until every run is stable; returns the
    list of per-round histogram lists (index 0 = initial colouring).  The
    [k]-tuple colourings touch [n^k] tuples per round, so the budget is
    ticked once per recoloured tuple. *)
let wl_rounds_c = Telemetry.counter "wl.rounds"

let run_lockstep ?(budget : Budget.t option) (k : int) (ds : Structure.t list)
    : run_state list * (int * int) list list list =
  Telemetry.with_span ?budget
    ~attrs:(fun () ->
      [
        ("k", Telemetry.I k);
        ("structures", Telemetry.I (List.length ds));
        ( "n",
          Telemetry.I
            (List.fold_left
               (fun acc d -> max acc (Structure.universe_size d))
               0 ds) );
      ])
    "wl.refine"
  @@ fun () ->
  let term_ids : (term, int) Hashtbl.t = Hashtbl.create 256 in
  let next = ref 0 in
  let id_of term =
    match Hashtbl.find_opt term_ids term with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.replace term_ids term i;
        i
  in
  let states = List.map (fun d -> init_run d k) ds in
  (* initial colouring from atomic types *)
  List.iter2
    (fun d s ->
      s.colours <- Array.mapi (fun _ t -> id_of (atomic_type d t)) s.tuples)
    ds states;
  let history = ref [ List.map histogram states ] in
  let stable = ref false in
  while not !stable do
    Telemetry.incr wl_rounds_c;
    let before = List.map num_colours states in
    (* assign new colours; fresh shared table each round keeps identifiers
       comparable because terms embed the previous identifiers *)
    let new_colour_arrays =
      List.map2
        (fun d s ->
          Array.init (Array.length s.tuples) (fun i ->
              Budget.tick_opt budget;
              round_term d s k i))
        ds states
    in
    List.iter2
      (fun s terms -> s.colours <- Array.map id_of terms)
      states new_colour_arrays;
    let after = List.map num_colours states in
    history := List.map histogram states :: !history;
    if before = after then stable := true
  done;
  (states, List.rev !history)

(** [equivalent ?budget ~k d1 d2] decides [k]-WL equivalence
    ([D_1 ≅_k D_2]): run in lockstep with shared colour identifiers and
    require equal colour histograms at every round. *)
let equivalent ?(budget : Budget.t option) ~(k : int) (d1 : Structure.t)
    (d2 : Structure.t) : bool =
  if k < 1 then invalid_arg "Wl.equivalent";
  if Structure.universe_size d1 <> Structure.universe_size d2 then false
  else begin
    let _, history = run_lockstep ?budget k [ d1; d2 ] in
    List.for_all
      (fun hists ->
        match hists with [ h1; h2 ] -> h1 = h2 | _ -> assert false)
      history
  end

(** [colour_classes ?budget ~k d] is the number of stable colour classes of
    the [k]-WL colouring of [d]. *)
let colour_classes ?(budget : Budget.t option) ~(k : int) (d : Structure.t) :
    int =
  let states, _ = run_lockstep ?budget k [ d ] in
  match states with [ s ] -> num_colours s | _ -> assert false
