(** Unions of conjunctive queries (Section 2.3 of the paper).

    A UCQ is a tuple of structures over the same signature together with a
    shared set [X] of free variables present in every universe.  As in the
    paper we maintain the convention that distinct disjuncts share only
    their free variables ([U(A_i) ∩ U(A_j) = X] for [i ≠ j]); {!make}
    renames quantified variables apart to enforce it.

    Disjuncts are stored in an array: the [2^ℓ] subset loops of the
    expansion and inclusion–exclusion counters select disjuncts by index,
    and list indexing would cost O(ℓ) per selection — O(ℓ²) per subset —
    inside an exponential loop. *)

module Intset = Intset

type t = { cqs : Structure.t array; free : int list (* sorted *) }

let length (psi : t) : int = Array.length psi.cqs
let free (psi : t) : int list = psi.free
let disjunct_structures (psi : t) : Structure.t list = Array.to_list psi.cqs

(** [num_atoms psi] is the total atom count Σ_i |atoms(Ψ_i)| — the
    optimizer's shrink metric alongside {!length}. *)
let num_atoms (psi : t) : int =
  Array.fold_left (fun acc a -> acc + Structure.num_tuples a) 0 psi.cqs

(** [disjunct psi i] is the [i]-th CQ of the union ([Ψ_i]). *)
let disjunct (psi : t) (i : int) : Cq.t = Cq.make psi.cqs.(i) psi.free

let disjuncts (psi : t) : Cq.t list =
  Array.to_list (Array.map (fun a -> Cq.make a psi.free) psi.cqs)

(** [make cqs] builds a UCQ from conjunctive queries that must all have the
    same free-variable set and signature; quantified variables are renamed
    apart. *)
let make (cqs : Cq.t list) : t =
  match cqs with
  | [] -> invalid_arg "Ucq.make: empty union"
  | first :: rest ->
      let x = Cq.free first in
      List.iter
        (fun q ->
          if Cq.free q <> x then
            invalid_arg "Ucq.make: free variable sets differ";
          if
            not
              (Signature.equal
                 (Structure.signature (Cq.structure q))
                 (Structure.signature (Cq.structure first)))
          then invalid_arg "Ucq.make: signatures differ")
        rest;
      (* Rename quantified variables apart. *)
      let fresh =
        ref
          (1
          + List.fold_left
              (fun acc q ->
                List.fold_left max acc (Structure.universe (Cq.structure q)))
              0 cqs)
      in
      let xset = Intset.of_list x in
      let structures =
        List.map
          (fun q ->
            let a = Cq.structure q in
            let mapping = Hashtbl.create 8 in
            List.iter
              (fun v ->
                if Intset.mem v xset then Hashtbl.add mapping v v
                else begin
                  Hashtbl.add mapping v !fresh;
                  incr fresh
                end)
              (Structure.universe a);
            Structure.rename a (Hashtbl.find mapping))
          cqs
      in
      { cqs = Array.of_list structures; free = x }

(** [of_structures structures free] builds a UCQ directly (used by the
    reduction pipeline, whose structures are already renamed apart: their
    quantified parts are empty). *)
let of_structures (structures : Structure.t list) (free : int list) : t =
  make (List.map (fun a -> Cq.make a free) structures)

(** [size psi] is [|Ψ| = Σ_i |Ψ_i|]. *)
let size (psi : t) : int =
  Array.fold_left
    (fun acc a -> acc + Structure.size a + List.length psi.free)
    0 psi.cqs

(** [arity psi] is the maximum relation arity. *)
let arity (psi : t) : int =
  Array.fold_left
    (fun acc a -> max acc (Signature.arity (Structure.signature a)))
    0 psi.cqs

let is_quantifier_free (psi : t) : bool =
  Array.for_all (fun a -> Structure.universe a = psi.free) psi.cqs

(** [num_quantified psi] is the total number of existentially quantified
    variables, [Σ_i |U(A_i) \ X|]. *)
let num_quantified (psi : t) : int =
  Array.fold_left
    (fun acc a -> acc + (Structure.universe_size a - List.length psi.free))
    0 psi.cqs

(** [restrict psi j] is the sub-union [Ψ|_J] for a list [j] of disjunct
    indices. *)
let restrict (psi : t) (j : int list) : t =
  let j = Listx.sort_uniq_ints j in
  if j = [] then invalid_arg "Ucq.restrict: empty index set";
  { cqs = Array.of_list (List.map (fun i -> psi.cqs.(i)) j); free = psi.free }

(** [combined psi j] is the combined conjunctive query [∧(Ψ|_J)]
    (Definition 23): the union of the structures of the selected disjuncts
    with the same free variables. *)
let combined (psi : t) (j : int list) : Cq.t =
  let j = Listx.sort_uniq_ints j in
  if j = [] then invalid_arg "Ucq.combined: empty index set";
  let structures = List.map (fun i -> psi.cqs.(i)) j in
  Cq.make (Structure.union_all structures) psi.free

(** [combined_all psi] is [∧(Ψ)]. *)
let combined_all (psi : t) : Cq.t =
  combined psi (List.init (length psi) (fun i -> i))

(** [deletion_closure psi] lists all sub-unions [Ψ|_J] for nonempty
    [J ⊆ [ℓ]] — the closure under deletions of Section 3. *)
let deletion_closure (psi : t) : t list =
  List.map (restrict psi) (Combinat.nonempty_subsets (length psi))

(** [is_union_of_acyclic psi] checks that every disjunct is acyclic. *)
let is_union_of_acyclic (psi : t) : bool =
  List.for_all Cq.is_acyclic (disjuncts psi)

(** [is_union_of_self_join_free psi] checks condition (III) of Theorem 3. *)
let is_union_of_self_join_free (psi : t) : bool =
  List.for_all Cq.is_self_join_free (disjuncts psi)

(* ------------------------------------------------------------------ *)
(* Counting answers                                                   *)
(* ------------------------------------------------------------------ *)

let ie_terms_c = Telemetry.counter "ucq.ie.terms"
let expansion_classes_c = Telemetry.counter "ucq.expansion.classes"

(* bitmask of an index set [J ⊆ [ℓ]], for span attributes *)
let subset_mask (j : int list) : int =
  List.fold_left (fun m i -> m lor (1 lsl i)) 0 j

(* Structural cost proxy for scheduling the per-subset work (combined
   query construction, homomorphism counting, #core computation): the
   combined query of [J] has [Σ atoms] atoms over [≈ Σ vars] variables,
   and both the counters and the core search grow with that product.
   Only relative order matters — the pool bin-packs largest-first — so
   a cheap syntactic proxy is enough and never touches the database. *)
let subset_cost_proxy (psi : t) : int list -> float =
  let atoms = Array.map Structure.num_tuples psi.cqs in
  let vars = Array.map Structure.universe_size psi.cqs in
  fun j ->
    let a = List.fold_left (fun acc i -> acc + atoms.(i)) 0 j in
    let v = List.fold_left (fun acc i -> acc + vars.(i)) 0 j in
    float_of_int (1 + a) *. float_of_int (1 + v)

(* Database-independent default for scheduling expansion terms; callers
   with a database in hand pass the calibrated [Plan.rep_cost] instead.
   Non-acyclic terms go through variable elimination rather than the
   linear join-tree counter, so they get a flat penalty factor. *)
let default_term_cost (q : Cq.t) : float =
  let s = Cq.structure q in
  let base =
    float_of_int (1 + Structure.num_tuples s)
    *. float_of_int (1 + Structure.universe_size s)
  in
  if Cq.is_acyclic q then base else base *. 8.

(** [count_naive ?budget ?pool psi d] iterates all assignments [X → U(D)]
    and keeps those that are an answer of some disjunct — the reference
    oracle.  The budget is ticked once per assignment and threaded into
    the homomorphism search.  Assignments are enumerated lazily (never
    materialising the [|D|^|X|] product); with a parallel pool the index
    space is split into ranges swept by the worker domains. *)
let count_naive ?(budget : Budget.t option) ?(pool : Pool.t option) (psi : t)
    (d : Structure.t) : int =
  Telemetry.with_span ?budget
    ~attrs:(fun () ->
      [
        ("l", Telemetry.I (length psi));
        ("free", Telemetry.I (List.length psi.free));
        ("dom", Telemetry.I (Structure.universe_size d));
      ])
    "ucq.naive"
  @@ fun () ->
  let x = psi.free in
  let k = List.length x in
  let dom = Structure.universe d in
  let cqs = Array.to_list psi.cqs in
  let is_answer tup =
    Budget.tick_opt budget;
    let fixed = List.combine x tup in
    List.exists (fun a -> Hom.exists ?budget ~fixed a d) cqs
  in
  if not (Pool.is_parallel pool) then
    Seq.fold_left
      (fun acc tup -> if is_answer tup then acc + 1 else acc)
      0
      (Combinat.tuples_seq k dom)
  else
    Pool.count_range (Option.get pool) ?budget
      ~total:(Combinat.num_tuples k dom)
      (fun idx -> is_answer (Combinat.tuple_of_index k dom idx))

(** The nonempty index sets [J ⊆ [ℓ]] in bitmask order — the iteration
    space shared by the inclusion–exclusion counter and the expansion. *)
let nonempty_index_sets (psi : t) : int list array =
  Array.of_list (Combinat.nonempty_subsets (length psi))

(** [count_inclusion_exclusion ?strategy ?budget ?pool psi d] computes
    [ans(Ψ → D) = Σ_{∅≠J} (-1)^(|J|+1) · ans(∧(Ψ|_J) → D)]
    (the proof of Lemma 26), counting each combined query with the given
    per-CQ strategy.  The budget is ticked once per index set [J] and
    threaded into each per-CQ count.  Each signed term is an independent
    {!Counting.count} call, so a pool fans the [2^ℓ − 1] terms out across
    domains; the signed sum is reduced in bitmask order regardless of
    scheduling. *)
let count_inclusion_exclusion ?(strategy = Counting.Auto)
    ?(budget : Budget.t option) ?(pool : Pool.t option) (psi : t)
    (d : Structure.t) : int =
  Telemetry.with_span ?budget
    ~attrs:(fun () -> [ ("l", Telemetry.I (length psi)) ])
    "ucq.ie"
  @@ fun () ->
  let term j =
    Budget.tick_opt budget;
    Telemetry.incr ie_terms_c;
    Telemetry.with_span
      ~attrs:(fun () -> [ ("subset", Telemetry.I (subset_mask j)) ])
      "ucq.ie.term"
    @@ fun () ->
    let sign = if List.length j mod 2 = 1 then 1 else -1 in
    sign * Counting.count ~strategy ?budget (combined psi j) d
  in
  let costs = if Pool.is_parallel pool then Some (subset_cost_proxy psi) else None in
  Pool.fold_opt pool ?budget ?costs ~f:term ~combine:( + ) ~init:0
    (nonempty_index_sets psi)

(* ------------------------------------------------------------------ *)
(* CQ expansion (Definition 25, Lemma 26)                             *)
(* ------------------------------------------------------------------ *)

(** One #equivalence class of the CQ expansion: a #minimal representative
    (the #core of the combined queries in the class) and its coefficient
    [c_Ψ]. *)
type expansion_term = { representative : Cq.t; coefficient : int }

(** [expansion ?budget ?pool psi] computes the CQ expansion of [Ψ]: group
    the combined queries [∧(Ψ|_J)] over all nonempty [J] by #equivalence
    and sum the signs [(-1)^(|J|+1)].  Representatives are #minimal (they
    are #cores), so by Lemma 18 grouping by isomorphism of #cores is
    exactly grouping by #equivalence.  Terms with coefficient [0] are
    retained; use {!support} for the non-vanishing part.  Runs in time
    [2^ℓ · poly(|Ψ|)]; the budget is ticked once per index set.  The
    per-subset #core computations are independent and run on the pool;
    the isomorphism grouping is a sequential pass in bitmask order, so
    the class list is identical for every job count. *)
let expansion ?(budget : Budget.t option) ?(pool : Pool.t option) (psi : t) :
    expansion_term list =
  Telemetry.with_span ?budget
    ~attrs:(fun () -> [ ("l", Telemetry.I (length psi)) ])
    "ucq.expansion"
  @@ fun () ->
  let core_of j =
    Budget.tick_opt budget;
    Telemetry.with_span
      ~attrs:(fun () -> [ ("subset", Telemetry.I (subset_mask j)) ])
      "ucq.expansion.core"
    @@ fun () ->
    let core = Cq.sharp_core (combined psi j) in
    let sign = if List.length j mod 2 = 1 then 1 else -1 in
    (core, sign)
  in
  let costs = if Pool.is_parallel pool then Some (subset_cost_proxy psi) else None in
  let cores =
    Pool.map_opt pool ?budget ?costs core_of (nonempty_index_sets psi)
  in
  let classes : (Cq.t * int ref) list ref = ref [] in
  Array.iter
    (fun (core, sign) ->
      let rec insert = function
        | [] -> classes := !classes @ [ (core, ref sign) ]
        | (rep, coeff) :: rest ->
            (* syntactic equality is a cheap certificate of isomorphism
               and the common case in quantifier-free expansions *)
            if Cq.equal rep core || Cq.isomorphic rep core then
              coeff := !coeff + sign
            else insert rest
      in
      insert !classes)
    cores;
  Telemetry.add expansion_classes_c (List.length !classes);
  List.map
    (fun (rep, coeff) -> { representative = rep; coefficient = !coeff })
    !classes

(** [support ?budget ?pool psi] is the expansion restricted to non-zero
    coefficients: the #minimal queries [(A, X)] with [c_Ψ(A, X) ≠ 0]. *)
let support ?(budget : Budget.t option) ?(pool : Pool.t option) (psi : t) :
    expansion_term list =
  List.filter (fun t -> t.coefficient <> 0) (expansion ?budget ?pool psi)

(** [coefficient psi q] is [c_Ψ(A, X)] for a conjunctive query [q]
    (Definition 25): the signed number of index sets whose combined query is
    #equivalent to [q]. *)
let coefficient (psi : t) (q : Cq.t) : int =
  let core = Cq.sharp_core q in
  List.fold_left
    (fun acc (term : expansion_term) ->
      if Cq.isomorphic term.representative core then acc + term.coefficient
      else acc)
    0 (expansion psi)

(** [count_via_expansion ?strategy ?budget ?pool ?term_cost psi d]
    evaluates the linear combination of Lemma 26 term by term:
    [Σ c_Ψ(A,X) · ans((A,X) → D)].  Each surviving term is an independent
    {!Counting.count} call fanned out on the pool; [term_cost] ranks the
    terms for largest-first placement (the Runner passes the calibrated
    database-aware estimate from the analysis layer). *)
let count_via_expansion ?(strategy = Counting.Auto) ?(budget : Budget.t option)
    ?(pool : Pool.t option) ?(term_cost : (Cq.t -> float) option) (psi : t)
    (d : Structure.t) : int =
  Telemetry.with_span ?budget
    ~attrs:(fun () -> [ ("l", Telemetry.I (length psi)) ])
    "ucq.count_via_expansion"
  @@ fun () ->
  let terms =
    Array.of_list
      (List.filter
         (fun (t : expansion_term) -> t.coefficient <> 0)
         (expansion ?budget ?pool psi))
  in
  let costs =
    if Pool.is_parallel pool then
      let cost = Option.value term_cost ~default:default_term_cost in
      Some (fun (t : expansion_term) -> cost t.representative)
    else None
  in
  Pool.fold_opt pool ?budget ?costs
    ~f:(fun (term : expansion_term) ->
      term.coefficient * Counting.count ~strategy ?budget term.representative d)
    ~combine:( + ) ~init:0 terms

(** [is_exhaustively_q_hierarchical psi] checks the Berkholz–Keppeler–
    Schweikardt criterion for constant-delay dynamic counting of UCQs
    ([12, Theorem 4.5], discussed in Section 1.2): every combined query
    [∧(Ψ|_J)] must be q-hierarchical.  The straightforward algorithm used
    here is exponential in [ℓ]; whether this can be improved is open. *)
let is_exhaustively_q_hierarchical (psi : t) : bool =
  List.for_all
    (fun j -> Cq.is_q_hierarchical (combined psi j))
    (Combinat.nonempty_subsets (length psi))

let pp (fmt : Format.formatter) (psi : t) : unit =
  Format.fprintf fmt "@[<v>UCQ with %d disjuncts, free = {%s}@]" (length psi)
    (String.concat "," (List.map string_of_int psi.free))

(** [count_via_expansion_big psi d] is the exact arbitrary-precision variant
    of {!count_via_expansion}; it is the oracle used by the
    complexity-monotonicity solver (Theorem 28), whose tensor-product
    databases push answer counts beyond native range. *)
let count_via_expansion_big (psi : t) (d : Structure.t) : Bigint.t =
  List.fold_left
    (fun acc (term : expansion_term) ->
      if term.coefficient = 0 then acc
      else
        Bigint.add acc
          (Bigint.mul
             (Bigint.of_int term.coefficient)
             (Counting.count_big term.representative d)))
    Bigint.zero (expansion psi)

(** [count_inclusion_exclusion_big psi d] is the exact arbitrary-precision
    variant of {!count_inclusion_exclusion}. *)
let count_inclusion_exclusion_big (psi : t) (d : Structure.t) : Bigint.t =
  Combinat.subsets_fold
    (fun acc j ->
      match j with
      | [] -> acc
      | _ ->
          let term = Counting.count_big (combined psi j) d in
          if List.length j mod 2 = 1 then Bigint.add acc term
          else Bigint.sub acc term)
    Bigint.zero (length psi)

(* ------------------------------------------------------------------ *)
(* Compiled expansions                                                *)
(* ------------------------------------------------------------------ *)

(** A UCQ compiled for repeated counting: the [2^ℓ] expansion work (cores,
    isomorphism grouping) is paid once, as are the per-term scheduling
    cost estimates; each database is then counted by evaluating the
    stored support terms. *)
type compiled = {
  query : t;
  terms : expansion_term list;
  costs : float array;  (** one scheduling estimate per stored term *)
}

(** [compile ?pool ?term_cost psi] precomputes the expansion support and
    the per-term scheduling estimates. *)
let compile ?(pool : Pool.t option) ?(term_cost = default_term_cost) (psi : t)
    : compiled =
  let terms = support ?pool psi in
  {
    query = psi;
    terms;
    costs =
      Array.of_list
        (List.map (fun (t : expansion_term) -> term_cost t.representative) terms);
  }

(** [compiled_support c] exposes the precomputed support. *)
let compiled_support (c : compiled) : expansion_term list = c.terms

(** [count_compiled ?strategy ?pool c d] evaluates the stored linear
    combination on [d], one pool task per surviving term, packed
    largest-first by the precomputed estimates. *)
let count_compiled ?(strategy = Counting.Auto) ?(pool : Pool.t option)
    (c : compiled) (d : Structure.t) : int =
  let terms = Array.of_list c.terms in
  let eval i =
    let t = terms.(i) in
    t.coefficient * Counting.count ~strategy t.representative d
  in
  let per =
    Pool.run
      (Option.value pool ~default:Pool.sequential)
      ~costs:(fun i -> c.costs.(i))
      ~f:eval (Array.length terms)
  in
  Array.fold_left ( + ) 0 per
