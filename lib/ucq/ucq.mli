(** Unions of conjunctive queries (Section 2.3): shared free variables,
    combined queries [∧(Ψ|J)] (Definition 23), the CQ expansion and
    coefficient function [c_Ψ] (Definition 25, Lemma 26), and the counting
    algorithms built on them. *)

type t

(** [make cqs] builds a union from CQs with identical free-variable sets
    and signatures; quantified variables are renamed apart so that
    [U(A_i) ∩ U(A_j) = X].
    @raise Invalid_argument on the empty list or mismatched disjuncts. *)
val make : Cq.t list -> t

(** [of_structures structures free] wraps structures sharing the free
    set. *)
val of_structures : Structure.t list -> int list -> t

val length : t -> int
val free : t -> int list
val disjunct_structures : t -> Structure.t list

(** [num_atoms psi] is the total atom count over all disjuncts. *)
val num_atoms : t -> int

(** [disjunct psi i] is [Ψ_i]. *)
val disjunct : t -> int -> Cq.t

val disjuncts : t -> Cq.t list

(** [size psi] is [|Ψ| = Σ_i |Ψ_i|]. *)
val size : t -> int

val arity : t -> int
val is_quantifier_free : t -> bool

(** [num_quantified psi] is [Σ_i |U(A_i) \ X|]. *)
val num_quantified : t -> int

(** [restrict psi j] is [Ψ|_J].
    @raise Invalid_argument on the empty index set. *)
val restrict : t -> int list -> t

(** [combined psi j] is [∧(Ψ|_J)] (Definition 23). *)
val combined : t -> int list -> Cq.t

(** [combined_all psi] is [∧(Ψ)]. *)
val combined_all : t -> Cq.t

(** [deletion_closure psi] lists every [Ψ|_J], [∅ ≠ J ⊆ [ℓ]]. *)
val deletion_closure : t -> t list

val is_union_of_acyclic : t -> bool

(** Condition (III) of Theorem 3. *)
val is_union_of_self_join_free : t -> bool

(** {2 Counting answers} *)

(** [count_naive ?budget ?pool psi d] enumerates assignments lazily —
    the reference oracle.  Every budgeted counter in this module raises
    {!Budget.Exhausted} from its hot loop when the budget runs out; catch
    it only at an engine boundary.  A parallel [?pool] splits the
    assignment index space across domains; [jobs = 1] (or no pool) keeps
    the sequential behaviour bit-for-bit. *)
val count_naive : ?budget:Budget.t -> ?pool:Pool.t -> t -> Structure.t -> int

(** [count_inclusion_exclusion ?strategy ?budget ?pool psi d] evaluates
    [Σ_(∅≠J) (-1)^(|J|+1) ans(∧(Ψ|J) → D)] (proof of Lemma 26).  Each
    signed term is an independent per-CQ count fanned out on the pool;
    the sum is reduced in bitmask order for every job count. *)
val count_inclusion_exclusion :
  ?strategy:Counting.strategy ->
  ?budget:Budget.t ->
  ?pool:Pool.t ->
  t ->
  Structure.t ->
  int

(** {2 The CQ expansion (Definition 25, Lemma 26)} *)

(** One #equivalence class: a #minimal representative (the class #core)
    with its coefficient [c_Ψ]. *)
type expansion_term = { representative : Cq.t; coefficient : int }

(** [expansion ?budget ?pool psi] groups the combined queries of all
    nonempty [J] by #equivalence and sums the signs; zero-coefficient
    classes are retained.  Runs in [2^ℓ · poly(|Ψ|)] time; the per-subset
    #core computations fan out on the pool, the grouping pass is
    sequential in bitmask order (identical classes for every job
    count). *)
val expansion : ?budget:Budget.t -> ?pool:Pool.t -> t -> expansion_term list

(** [support ?budget ?pool psi] is the expansion restricted to non-zero
    coefficients. *)
val support : ?budget:Budget.t -> ?pool:Pool.t -> t -> expansion_term list

(** [coefficient psi q] is [c_Ψ(A, X)] for the class of [q]. *)
val coefficient : t -> Cq.t -> int

(** [count_via_expansion ?strategy ?budget ?pool ?term_cost psi d]
    evaluates the Lemma 26 linear combination term by term, one pool task
    per surviving term.  [term_cost] ranks terms for the pool's
    largest-first placement (default: a syntactic size proxy); it never
    affects the result, only the schedule. *)
val count_via_expansion :
  ?strategy:Counting.strategy ->
  ?budget:Budget.t ->
  ?pool:Pool.t ->
  ?term_cost:(Cq.t -> float) ->
  t ->
  Structure.t ->
  int

(** Exact arbitrary-precision variants (oracles for Theorem 28). *)
val count_via_expansion_big : t -> Structure.t -> Bigint.t

val count_inclusion_exclusion_big : t -> Structure.t -> Bigint.t

(** [is_exhaustively_q_hierarchical psi] checks the dynamic-counting
    criterion of [12] (Section 1.2): every [∧(Ψ|J)] q-hierarchical.
    Exponential in [ℓ]. *)
val is_exhaustively_q_hierarchical : t -> bool

val pp : Format.formatter -> t -> unit

(** {2 Compiled expansions} *)

(** A UCQ compiled for repeated counting: the [2^ℓ] expansion work is paid
    once at {!compile}; each database is then counted by evaluating the
    stored support terms. *)
type compiled

(** [compile ?pool ?term_cost psi] precomputes the expansion support and
    a per-term scheduling estimate ([term_cost], default: a syntactic
    size proxy), so repeated {!count_compiled} calls pay neither. *)
val compile : ?pool:Pool.t -> ?term_cost:(Cq.t -> float) -> t -> compiled
val compiled_support : compiled -> expansion_term list

val count_compiled :
  ?strategy:Counting.strategy -> ?pool:Pool.t -> compiled -> Structure.t -> int
