(** Parsing of fact-delta lines: the input language of [ucqc watch] and
    the payload syntax of the server's [insert]/[delete]/[apply] ops.

    Two surface forms are accepted, distinguished by the first
    non-blank character of the line:

    - {b text}: a signed fact, [+E(1,2)] or [-Likes(alice,post1)], with
      an optional trailing [.] and [#] line comments — the same atom
      syntax as the [.facts] database files (non-negative integer
      constants denote themselves, identifier constants are interned
      against the loaded database's environment);
    - {b NDJSON} (lines starting with [{]): the server mutation bodies
      [{"op":"insert","fact":"E(1,2)"}],
      [{"op":"delete","fact":"E(1,2)"}] and
      [{"op":"apply","deltas":["+E(1,2)","-R(3)"]}].

    Everything here is pure and total — the fuzzer drives {!line} with
    a crash corpus and raw random bytes: no exceptions escape, parsing
    is deterministic, and every reported span stays inside the input
    (1-based, end-exclusive, the {!Ucqc_error.Parse_error}
    convention). *)

type sign = Insert | Delete

(** One constant before interning: integer literals denote themselves,
    identifiers are resolved against the database environment later. *)
type arg = Int of int | Sym of string

(** One parsed fact delta.  The span covers the delta's own characters
    within its source line ([line] is taken from [?lineno]). *)
type spec = {
  sign : sign;
  rel : string;
  args : arg list;
  line : int;
  col : int;
  end_line : int;
  end_col : int;
}

(** A classified input line. *)
type parsed =
  | Deltas of spec list  (** one text delta, or the NDJSON batch *)
  | Blank  (** empty or comment-only *)

(** [line ?lineno text] parses one input line ([lineno], default 1, is
    the line number reported in spans and errors).  Never raises. *)
val line : ?lineno:int -> string -> (parsed, Ucqc_error.t) result

(** [fact_string ~sign ?lineno text] parses an unsigned fact
    ["E(1,2)"] — the server's ["fact"] field. *)
val fact_string :
  sign:sign -> ?lineno:int -> string -> (spec, Ucqc_error.t) result

(** [delta_string ?lineno text] parses a signed fact ["+E(1,2)"] — one
    element of the server's ["deltas"] array. *)
val delta_string : ?lineno:int -> string -> (spec, Ucqc_error.t) result

(** [render s] is the canonical text form, [+E(1,2)] — a {!line}
    fixpoint: rendering and reparsing yields an equal spec (modulo
    span). *)
val render : spec -> string
