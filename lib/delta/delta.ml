(** Tiered incremental counting (see the interface for the model).

    Tier B is the interesting case.  For a combined query [q] with free
    set [X] and an update [±R(t)], every answer gained or lost must
    have a homomorphism mapping some [R]-atom to [t].  So for each
    occurrence [R(v1..vk)] in [q] we bind [vi := ti] and materialise
    the bound answers as {e candidates}; a candidate only counts if it
    was not already satisfied before the insert (resp. is no longer
    satisfied after the delete), which one all-variables-bound boolean
    evaluation per candidate decides.

    Bindings are compiled by {e specialization} ({!specialize}): each
    atom mentioning a bound variable is replaced by a residual atom
    over its unbound positions whose extension is the matching tuples
    of the database — an eager semi-join.  This matters: the earlier
    encoding (conjoin fresh unary atoms [__b(v)] with singleton
    relations) left the full relations in the quantified variables'
    join buckets, so every per-candidate check re-joined whole
    relations and a tier-B update could cost {e more} than a fresh
    recompute.  After specialization the {!Varelim} engine only ever
    sees neighbourhood-sized relations, and the cheap
    {!Structure.extend} constructor attaches them without re-validating
    the database, so the work per update is proportional to the changed
    tuple's neighbourhood, not to the database or answer count. *)

type fact = { rel : string; tuple : int list }
type update = { op : [ `Insert | `Delete ]; fact : fact }

(* ------------------------------------------------------------------ *)
(* The database session                                               *)
(* ------------------------------------------------------------------ *)

type db = {
  constants : (string * int) list;
  uset : Intset.t;
  mutable current : Structure.t;
  mutable sepoch : int;
}

let open_db ?(env : Parse.db_env option) (s : Structure.t) : db =
  {
    constants = (match env with Some e -> e.Parse.constants | None -> []);
    uset = Structure.universe_set s;
    current = s;
    sepoch = 0;
  }

let structure (d : db) : Structure.t = d.current
let epoch (d : db) : int = d.sepoch

let validate (d : db) (u : update) : (unit, Ucqc_error.t) result =
  let sg = Structure.signature d.current in
  match Signature.find_opt sg u.fact.rel with
  | None ->
      Error
        (Ucqc_error.Unsupported
           (Printf.sprintf
              "unknown relation %s: the database signature is fixed at load \
               time"
              u.fact.rel))
  | Some sym ->
      let got = List.length u.fact.tuple in
      if got <> sym.Signature.arity then
        Error
          (Ucqc_error.Arity_mismatch
             { rel = u.fact.rel; expected = sym.Signature.arity; got })
      else (
        match
          List.find_opt
            (fun v -> not (Intset.mem v d.uset))
            u.fact.tuple
        with
        | Some v ->
            Error
              (Ucqc_error.Unsupported
                 (Printf.sprintf
                    "element %d is not in the universe, which is fixed at \
                     load time (declare spare elements with 'universe { .. \
                     }')"
                    v))
        | None -> Ok ())

let resolve (d : db) (spec : Delta_parse.spec) : (update, Ucqc_error.t) result
    =
  let exception Bad of Ucqc_error.t in
  match
    List.map
      (function
        | Delta_parse.Int k -> k
        | Delta_parse.Sym s -> (
            match List.assoc_opt s d.constants with
            | Some k -> k
            | None ->
                raise
                  (Bad
                     (Ucqc_error.Unsupported
                        (Printf.sprintf
                           "unknown constant %s: the universe is fixed at \
                            load time"
                           s)))))
      spec.Delta_parse.args
  with
  | exception Bad e -> Error e
  | tuple -> (
      let u =
        {
          op =
            (match spec.Delta_parse.sign with
            | Delta_parse.Insert -> `Insert
            | Delta_parse.Delete -> `Delete);
          fact = { rel = spec.Delta_parse.rel; tuple };
        }
      in
      match validate d u with Ok () -> Ok u | Error e -> Error e)

type applied = {
  upd : update;
  changed : bool;
  epoch : int;
  before : Structure.t;
  after : Structure.t;
}

let apply (d : db) (u : update) : (applied, Ucqc_error.t) result =
  match validate d u with
  | Error e -> Error e
  | Ok () ->
      let before = d.current in
      let present = List.mem u.fact.tuple (Structure.relation before u.fact.rel) in
      let changed =
        match u.op with `Insert -> not present | `Delete -> present
      in
      let after =
        if not changed then before
        else
          match u.op with
          | `Insert -> Structure.add_tuples before u.fact.rel [ u.fact.tuple ]
          | `Delete -> Structure.remove_tuples before u.fact.rel [ u.fact.tuple ]
      in
      if changed then begin
        d.current <- after;
        d.sepoch <- d.sepoch + 1
      end;
      Ok { upd = u; changed; epoch = d.sepoch; before; after }

(* ------------------------------------------------------------------ *)
(* Bound-query evaluation (tier B)                                    *)
(* ------------------------------------------------------------------ *)

(* A fresh residual-symbol prefix clashing with nothing in either
   signature; computed once per state. *)
let fresh_prefix (sigs : Signature.t list) : string =
  let clashes p =
    List.exists
      (List.exists (fun (s : Signature.symbol) ->
           String.length s.Signature.name >= String.length p
           && String.sub s.Signature.name 0 (String.length p) = p))
      sigs
  in
  let p = ref "__b" in
  while clashes !p do
    p := "_" ^ !p
  done;
  !p

(** [specialize prefix q bindings d] partially evaluates [q] under
    [bindings]: every atom mentioning a bound variable is replaced by a
    residual atom over its unbound positions, whose extension is the
    matching tuples of [d] projected accordingly — an eager semi-join
    that restricts the relations {e before} variable elimination joins
    them.  Fully-bound atoms are checked against [d] and dropped;
    [None] means one of them had no matching tuple, i.e. the bound
    query is unsatisfiable.  On [Some (q', d')], [q'] ranges over the
    surviving (unbound) variables only — its free set is [free q]
    minus the bound variables — and [d'] extends [d] with the residual
    relations via {!Structure.extend}, so nothing of [d] itself is
    re-validated. *)
let specialize (prefix : string) (q : Cq.t) (bindings : (int * int) list)
    (d : Structure.t) : (Cq.t * Structure.t) option =
  let bound v = List.assoc_opt v bindings in
  let counter = ref 0 in
  let syms = ref [] in
  let rels = ref [] in
  let exception Unsat in
  let specialize_atom (name : string) (args : int list) :
      (string * int list) option =
    if List.for_all (fun v -> bound v = None) args then Some (name, args)
    else begin
      let matches tup =
        List.for_all2
          (fun v c -> match bound v with Some b -> b = c | None -> true)
          args tup
      in
      let matching = List.filter matches (Structure.relation d name) in
      let residual_args = List.filter (fun v -> bound v = None) args in
      if residual_args = [] then
        if matching = [] then raise Unsat else None (* satisfied: drop *)
      else begin
        let fname = prefix ^ string_of_int !counter in
        incr counter;
        let residual tup =
          List.filter_map
            (fun (v, c) -> if bound v = None then Some c else None)
            (List.combine args tup)
        in
        syms := Signature.symbol fname (List.length residual_args) :: !syms;
        rels := (fname, List.map residual matching) :: !rels;
        Some (fname, residual_args)
      end
    end
  in
  match
    List.concat_map
      (fun (name, ts) -> List.filter_map (specialize_atom name) ts)
      (Structure.relations (Cq.structure q))
  with
  | exception Unsat -> None
  | atoms ->
      let free = List.filter (fun v -> bound v = None) (Cq.free q) in
      let vars = Listx.sort_uniq_ints (free @ List.concat_map snd atoms) in
      let by_name =
        List.fold_left
          (fun acc (name, args) ->
            match List.assoc_opt name acc with
            | Some argss ->
                (name, args :: argss) :: List.remove_assoc name acc
            | None -> (name, [ args ]) :: acc)
          [] atoms
      in
      let qsig =
        Signature.make
          (List.map
             (fun (name, argss) ->
               Signature.symbol name (List.length (List.hd argss)))
             by_name)
      in
      let qa = Structure.make qsig vars by_name in
      let d' = if !syms = [] then d else Structure.extend d !syms !rels in
      Some (Cq.make qa free, d')

(** The consistent binding of an occurrence's variables to the changed
    tuple's values, or [None] when a repeated variable would need two
    values. *)
let binding_of (args : int list) (tuple : int list) : (int * int) list option
    =
  let exception Inconsistent in
  try
    Some
      (List.fold_left2
         (fun acc v c ->
           match List.assoc_opt v acc with
           | Some c' when c' <> c -> raise Inconsistent
           | Some _ -> acc
           | None -> (v, c) :: acc)
         [] args tuple)
  with Inconsistent -> None

(* ------------------------------------------------------------------ *)
(* Per-query states                                                   *)
(* ------------------------------------------------------------------ *)

type bterm = {
  tsign : int;
  tq : Cq.t;  (** normalized combined query: isolated variables dropped *)
  iso_exp : int;  (** dropped isolated free variables *)
  occs : (string * int list list) list;  (** relation -> occurrence args *)
  mutable n : int;  (** maintained [ans(tq -> D)] *)
}

type bstate = { prefix : string; us : int; terms : bterm list }

type impl =
  | TA of Dynamic_ucq.t
  | TB of bstate
  | TC

type state = {
  spsi : Ucq.t;
  sel : Tier.selection;
  mutable impl : impl;
  mutable at_epoch : int;  (** epoch the tier-A/B state is synced to *)
  mutable memo : (int * int) option;  (** (epoch, exact count) *)
  mutable degraded_reason : string option;
}

let query (st : state) : Ucq.t = st.spsi
let selection (st : state) : Tier.selection = st.sel

let effective_tier (st : state) : Tier.t =
  match st.impl with TA _ -> Tier.A | TB _ -> Tier.B | TC -> Tier.C

let degraded (st : state) : string option = st.degraded_reason

let degrade (st : state) (reason : string) : unit =
  st.impl <- TC;
  st.degraded_reason <- Some reason

(** One tier-B term over the current database. *)
let prepare_bterm ?(budget : Budget.t option) (d : db) (sign : int) (q0 : Cq.t)
    : bterm =
  let us = Structure.universe_size d.current in
  if us = 0 then
    (* no update can touch an empty universe: the count is frozen *)
    { tsign = sign; tq = q0; iso_exp = 0; occs = []; n = Varelim.count ?budget q0 d.current }
  else begin
    let q1 = Cq.drop_isolated_quantified q0 in
    let iso = Cq.isolated_variables q1 in
    (* after dropping isolated quantified variables, every isolated
       variable is free: each ranges over the whole universe *)
    let a1 = Cq.structure q1 in
    let qcov =
      Cq.make
        (Structure.delete_elements a1 iso)
        (List.filter (fun v -> not (List.mem v iso)) (Cq.free q1))
    in
    let occs =
      List.filter
        (fun (_, ts) -> ts <> [])
        (Structure.relations (Cq.structure qcov))
    in
    {
      tsign = sign;
      tq = qcov;
      iso_exp = List.length iso;
      occs;
      n = Varelim.count ?budget qcov d.current;
    }
  end

let bstate_count (b : bstate) : int =
  List.fold_left
    (fun acc t ->
      acc + (t.tsign * t.n * Combinat.power_int b.us t.iso_exp))
    0 b.terms

(** Delta-evaluate one accepted change into one term. *)
let apply_bterm ?(budget : Budget.t option) (b : bstate) (t : bterm)
    (r : applied) : unit =
  match List.assoc_opt r.upd.fact.rel t.occs with
  | None -> ()
  | Some occurrences ->
      let d_cand, d_check =
        match r.upd.op with
        | `Insert -> (r.after, r.before)
        | `Delete -> (r.before, r.after)
      in
      let xs = Cq.free t.tq in
      let cands : (int list, unit) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun args ->
          match binding_of args r.upd.fact.tuple with
          | None -> ()
          | Some bindings -> (
              match specialize b.prefix t.tq bindings d_cand with
              | None -> () (* bound query unsatisfiable: no candidates *)
              | Some (qb, db_) ->
                  let rel, uncovered =
                    Varelim.answer_relation ?budget qb db_
                  in
                  if uncovered <> 0 then
                    raise
                      (Ucqc_error.Error
                         (Ucqc_error.Internal
                            "delta: bound query left a free variable \
                             uncovered"));
                  (* answers cover the unbound free variables; bound ones
                     come from the binding itself *)
                  List.iter
                    (fun tuple ->
                      let env = List.combine rel.Relation.vars tuple in
                      let cand =
                        List.map
                          (fun x ->
                            match List.assoc_opt x bindings with
                            | Some c -> c
                            | None -> List.assoc x env)
                          xs
                      in
                      Hashtbl.replace cands cand ())
                    rel.Relation.tuples))
        occurrences;
      let delta =
        Hashtbl.fold
          (fun a () acc ->
            let satisfied =
              match
                specialize b.prefix t.tq (List.combine xs a) d_check
              with
              | None -> false
              | Some (qb, db_) -> Varelim.count ?budget qb db_ > 0
            in
            if satisfied then acc else acc + 1)
          cands 0
      in
      t.n <-
        (match r.upd.op with
        | `Insert -> t.n + delta
        | `Delete -> t.n - delta)

let prepare ?(budget : Budget.t option) (psi : Ucq.t) (d : db) : state =
  let sel = Tier.select psi in
  let st =
    {
      spsi = psi;
      sel;
      impl = TC;
      at_epoch = d.sepoch;
      memo = None;
      degraded_reason = None;
    }
  in
  let covered =
    Signature.subset
      (List.fold_left
         (fun acc a -> Signature.union acc (Structure.signature a))
         (Signature.make [])
         (Ucq.disjunct_structures psi))
      (Structure.signature d.current)
  in
  (match sel.Tier.tier with
  | _ when not covered ->
      (* a recompute fails identically to the one-shot path; nothing to
         maintain *)
      st.degraded_reason <-
        Some "database signature does not cover the query"
  | Tier.A -> (
      match Dynamic_ucq.create psi d.current with
      | Ok dyn -> st.impl <- TA dyn
      | Error e -> st.degraded_reason <- Some (Ucqc_error.to_string e))
  | Tier.B -> (
      let subsets = Combinat.nonempty_subsets (Ucq.length psi) in
      let prefix =
        fresh_prefix
          (Structure.signature d.current
          :: List.map Structure.signature (Ucq.disjunct_structures psi))
      in
      match
        List.map
          (fun j ->
            let sign = if List.length j mod 2 = 1 then 1 else -1 in
            prepare_bterm ?budget d sign (Ucq.combined psi j))
          subsets
      with
      | terms ->
          st.impl <-
            TB { prefix; us = Structure.universe_size d.current; terms }
      | exception Budget.Exhausted _ ->
          st.degraded_reason <- Some "budget exhausted while preparing"
      | exception e ->
          st.degraded_reason <- Some (Printexc.to_string e))
  | Tier.C -> ());
  st

let apply_state ?(budget : Budget.t option) (st : state) (_d : db)
    (r : applied) : unit =
  st.memo <- None;
  if not r.changed then ()
  else if st.at_epoch <> r.epoch - 1 then (
    match st.impl with
    | TC -> st.at_epoch <- r.epoch
    | TA _ | TB _ ->
        degrade st
          (Printf.sprintf "missed updates: state at epoch %d, change is %d"
             st.at_epoch r.epoch))
  else begin
    (match st.impl with
    | TC -> ()
    | TA dyn -> (
        match r.upd.op with
        | `Insert -> Dynamic_ucq.insert dyn r.upd.fact.rel r.upd.fact.tuple
        | `Delete -> Dynamic_ucq.delete dyn r.upd.fact.rel r.upd.fact.tuple)
    | TB b -> (
        try List.iter (fun t -> apply_bterm ?budget b t r) b.terms with
        | Budget.Exhausted _ ->
            degrade st "budget exhausted during delta evaluation"
        | e -> degrade st (Printexc.to_string e)));
    st.at_epoch <- r.epoch
  end

type source = Maintained | Memoized

let maintained_count (st : state) (d : db) : (int * source) option =
  match st.memo with
  | Some (e, n) when e = d.sepoch -> Some (n, Memoized)
  | _ -> (
      if st.at_epoch <> d.sepoch then None
      else
        match st.impl with
        | TA dyn -> Some (Dynamic_ucq.count dyn, Maintained)
        | TB b -> Some (bstate_count b, Maintained)
        | TC -> None)

let memoize (st : state) (d : db) (n : int) : unit =
  st.memo <- Some (d.sepoch, n)

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let render_facts (s : Structure.t) : string =
  let buf = Buffer.create 1024 in
  (match Structure.universe s with
  | [] -> ()
  | us ->
      Buffer.add_string buf "universe { ";
      Buffer.add_string buf (String.concat ", " (List.map string_of_int us));
      Buffer.add_string buf " }\n");
  List.iter
    (fun (name, ts) ->
      List.iter
        (fun tup ->
          Buffer.add_string buf name;
          Buffer.add_char buf '(';
          Buffer.add_string buf
            (String.concat ", " (List.map string_of_int tup));
          Buffer.add_string buf ").\n")
        ts)
    (Structure.relations s);
  Buffer.contents buf
