(** Fact-delta line parsing (see the interface).  A hand-rolled scanner
    with 1-based column tracking for the text form; {!Trace_json} for
    the NDJSON form.  Total by construction: every failure path builds a
    {!Ucqc_error.Parse_error} whose span stays inside the input line. *)

type sign = Insert | Delete
type arg = Int of int | Sym of string

type spec = {
  sign : sign;
  rel : string;
  args : arg list;
  line : int;
  col : int;
  end_line : int;
  end_col : int;
}

type parsed = Deltas of spec list | Blank

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_digit c = c >= '0' && c <= '9'

(* ------------------------------------------------------------------ *)
(* Text form                                                          *)
(* ------------------------------------------------------------------ *)

(* A scanner over one line: [pos] is a 0-based index; columns reported
   to the user are [pos + 1].  Errors are returned, never raised. *)
type scanner = { text : string; mutable pos : int; lineno : int }

let error (sc : scanner) ~(from : int) (msg : string) : ('a, Ucqc_error.t) result
    =
  Error
    (Ucqc_error.Parse_error
       {
         line = sc.lineno;
         col = from + 1;
         end_line = sc.lineno;
         end_col = sc.pos + 1;
         msg;
       })

let point_error (sc : scanner) (msg : string) : ('a, Ucqc_error.t) result =
  error sc ~from:sc.pos msg

let skip_ws (sc : scanner) : unit =
  let n = String.length sc.text in
  while
    sc.pos < n
    && (sc.text.[sc.pos] = ' ' || sc.text.[sc.pos] = '\t'
       || sc.text.[sc.pos] = '\r')
  do
    sc.pos <- sc.pos + 1
  done

let at_end_or_comment (sc : scanner) : bool =
  skip_ws sc;
  sc.pos >= String.length sc.text || sc.text.[sc.pos] = '#'

let ( let* ) = Result.bind

(** One constant: a non-negative integer literal or an identifier (the
    same alphabet as the [.facts] tokenizer; negative constants are
    rejected there too). *)
let scan_arg (sc : scanner) : (arg, Ucqc_error.t) result =
  let n = String.length sc.text in
  if sc.pos >= n then point_error sc "expected a constant"
  else
    let start = sc.pos in
    let c = sc.text.[sc.pos] in
    if is_digit c then begin
      while sc.pos < n && is_digit sc.text.[sc.pos] do
        sc.pos <- sc.pos + 1
      done;
      if sc.pos < n && is_ident_char sc.text.[sc.pos] then
        error sc ~from:start "malformed constant: identifiers cannot start \
                              with a digit"
      else
        let text = String.sub sc.text start (sc.pos - start) in
        match int_of_string_opt text with
        | Some k -> Ok (Int k)
        | None -> error sc ~from:start ("integer literal " ^ text ^ " out of range")
    end
    else if c = '-' then begin
      sc.pos <- sc.pos + 1;
      while sc.pos < n && is_digit sc.text.[sc.pos] do
        sc.pos <- sc.pos + 1
      done;
      error sc ~from:start "negative constants are not allowed"
    end
    else if is_ident_char c then begin
      while sc.pos < n && is_ident_char sc.text.[sc.pos] do
        sc.pos <- sc.pos + 1
      done;
      Ok (Sym (String.sub sc.text start (sc.pos - start)))
    end
    else point_error sc (Printf.sprintf "unexpected character %C" c)

(** [R(a1,...,ak)] with [k >= 0], starting at the current position. *)
let scan_fact (sc : scanner) ~(sign : sign) ~(from : int) :
    (spec, Ucqc_error.t) result =
  let n = String.length sc.text in
  skip_ws sc;
  let rel_start = sc.pos in
  if sc.pos >= n || not (is_ident_char sc.text.[sc.pos]) then
    point_error sc "expected a relation symbol"
  else if is_digit sc.text.[sc.pos] then
    point_error sc "relation symbols cannot start with a digit"
  else begin
    while sc.pos < n && is_ident_char sc.text.[sc.pos] do
      sc.pos <- sc.pos + 1
    done;
    let rel = String.sub sc.text rel_start (sc.pos - rel_start) in
    skip_ws sc;
    if sc.pos >= n || sc.text.[sc.pos] <> '(' then
      point_error sc "expected '(' after the relation symbol"
    else begin
      sc.pos <- sc.pos + 1;
      skip_ws sc;
      let* args =
        if sc.pos < n && sc.text.[sc.pos] = ')' then begin
          sc.pos <- sc.pos + 1;
          Ok []
        end
        else
          let rec loop acc =
            let* a = scan_arg sc in
            skip_ws sc;
            if sc.pos < n && sc.text.[sc.pos] = ',' then begin
              sc.pos <- sc.pos + 1;
              skip_ws sc;
              loop (a :: acc)
            end
            else if sc.pos < n && sc.text.[sc.pos] = ')' then begin
              sc.pos <- sc.pos + 1;
              Ok (List.rev (a :: acc))
            end
            else point_error sc "expected ',' or ')' in the argument list"
          in
          loop []
      in
      Ok
        {
          sign;
          rel;
          args;
          line = sc.lineno;
          col = from + 1;
          end_line = sc.lineno;
          end_col = sc.pos + 1;
        }
    end
  end

(** The rest of the line after a fact: optional ['.'], then blank or a
    comment. *)
let expect_line_end (sc : scanner) : (unit, Ucqc_error.t) result =
  skip_ws sc;
  if sc.pos < String.length sc.text && sc.text.[sc.pos] = '.' then
    sc.pos <- sc.pos + 1;
  if at_end_or_comment sc then Ok ()
  else point_error sc "trailing garbage after the delta"

let scan_signed (sc : scanner) : (spec, Ucqc_error.t) result =
  skip_ws sc;
  let from = sc.pos in
  if sc.pos >= String.length sc.text then point_error sc "expected '+' or '-'"
  else
    let* sign =
      match sc.text.[sc.pos] with
      | '+' ->
          sc.pos <- sc.pos + 1;
          Ok Insert
      | '-' ->
          sc.pos <- sc.pos + 1;
          Ok Delete
      | c ->
          point_error sc
            (Printf.sprintf "expected '+' or '-' before the fact, found %C" c)
    in
    scan_fact sc ~sign ~from

let delta_string ?(lineno : int = 1) (text : string) :
    (spec, Ucqc_error.t) result =
  let sc = { text; pos = 0; lineno } in
  let* s = scan_signed sc in
  let* () = expect_line_end sc in
  Ok s

let fact_string ~(sign : sign) ?(lineno : int = 1) (text : string) :
    (spec, Ucqc_error.t) result =
  let sc = { text; pos = 0; lineno } in
  skip_ws sc;
  let from = sc.pos in
  let* s = scan_fact sc ~sign ~from in
  let* () = expect_line_end sc in
  Ok s

(* ------------------------------------------------------------------ *)
(* NDJSON form                                                        *)
(* ------------------------------------------------------------------ *)

(* Spans for errors inside a JSON frame cover the whole line: mapping a
   position inside a JSON string literal back through its escapes is
   not worth the machinery, and the whole-line span keeps the fuzzer's
   spans-in-text invariant. *)
let json_error (lineno : int) (text : string) (msg : string) :
    ('a, Ucqc_error.t) result =
  Error
    (Ucqc_error.Parse_error
       {
         line = lineno;
         col = 1;
         end_line = lineno;
         end_col = String.length text + 1;
         msg;
       })

let json_line (lineno : int) (text : string) : (parsed, Ucqc_error.t) result =
  match Trace_json.parse text with
  | exception Failure msg -> json_error lineno text ("malformed JSON delta: " ^ msg)
  | exception _ -> json_error lineno text "malformed JSON delta"
  | Trace_json.Obj obj -> (
      match List.assoc_opt "op" obj with
      | Some (Trace_json.Str (("insert" | "delete") as op)) -> (
          let sign = if op = "insert" then Insert else Delete in
          match List.assoc_opt "fact" obj with
          | Some (Trace_json.Str f) -> (
              match fact_string ~sign ~lineno f with
              | Ok s -> Ok (Deltas [ s ])
              | Error e ->
                  json_error lineno text
                    (Printf.sprintf "invalid \"fact\" %S: %s" f
                       (Ucqc_error.to_string e)))
          | Some _ -> json_error lineno text "field \"fact\" must be a string"
          | None -> json_error lineno text "missing required field \"fact\"")
      | Some (Trace_json.Str "apply") -> (
          match List.assoc_opt "deltas" obj with
          | Some (Trace_json.Arr items) ->
              let rec loop acc = function
                | [] -> Ok (Deltas (List.rev acc))
                | Trace_json.Str d :: rest -> (
                    match delta_string ~lineno d with
                    | Ok s -> loop (s :: acc) rest
                    | Error e ->
                        json_error lineno text
                          (Printf.sprintf "invalid delta %S: %s" d
                             (Ucqc_error.to_string e)))
                | _ :: _ ->
                    json_error lineno text
                      "field \"deltas\" must be an array of strings"
              in
              loop [] items
          | Some _ ->
              json_error lineno text "field \"deltas\" must be an array"
          | None -> json_error lineno text "missing required field \"deltas\"")
      | Some (Trace_json.Str other) ->
          json_error lineno text
            (Printf.sprintf
               "unknown op %S (expected 'insert', 'delete' or 'apply')" other)
      | Some _ -> json_error lineno text "field \"op\" must be a string"
      | None -> json_error lineno text "missing required field \"op\"")
  | _ -> json_error lineno text "JSON delta frame must be an object"

(* ------------------------------------------------------------------ *)
(* Entry point and rendering                                          *)
(* ------------------------------------------------------------------ *)

let line ?(lineno : int = 1) (text : string) : (parsed, Ucqc_error.t) result =
  let sc = { text; pos = 0; lineno } in
  if at_end_or_comment sc then Ok Blank
  else if sc.text.[sc.pos] = '{' then json_line lineno text
  else
    let* s = scan_signed sc in
    let* () = expect_line_end sc in
    Ok (Deltas [ s ])

let render (s : spec) : string =
  Printf.sprintf "%c%s(%s)"
    (match s.sign with Insert -> '+' | Delete -> '-')
    s.rel
    (String.concat ","
       (List.map (function Int k -> string_of_int k | Sym v -> v) s.args))
