(** The tiered incremental-counting engine behind [ucqc watch] and the
    server's mutation ops.

    A {!db} is a mutable single-writer database session: the universe
    and signature are fixed at load time (the dynamic setting of
    Section 1.2), tuples change one at a time through {!apply}, and a
    monotonically increasing {b epoch} stamps every accepted change.

    Each registered query is a {!state} maintained on one of three
    tiers (selected by {!Tier.select} from [lib/analysis]):

    - {b A} — a {!Dynamic_ucq} instance: O(1) per update.
    - {b B} — per-combined-query delta evaluation: the signed counts
      of the [2^l - 1] combined queries [∧(Ψ|J)] are kept, and an
      update [±R(t)] re-evaluates only the homomorphisms through the
      changed tuple [t].  For each occurrence of [R] in a combined
      query, the occurrence's variables are bound to [t] by
      {e specializing} the query — atoms touching bound variables are
      replaced by residual atoms over neighbourhood-sized relations, an
      eager semi-join, so the stock variable-elimination engine of
      [lib/db] never joins full relations — and the bound query's
      answers are the candidate assignments; candidates not already
      (insert) or no longer (delete) satisfied shift the maintained
      count.
    - {b C} — nothing is maintained; counts are recomputed lazily by
      the caller and memoized per epoch via {!memoize}.

    Tier-A/B states degrade to tier-C behaviour (permanently, with a
    recorded reason) instead of ever reporting a wrong count: budget
    exhaustion or any escape during delta application marks the state,
    and {!maintained_count} stops answering. *)

(** {1 Updates} *)

type fact = { rel : string; tuple : int list }
type update = { op : [ `Insert | `Delete ]; fact : fact }

(** {1 The database session} *)

type db

(** [open_db ?env s] starts a session over the loaded database [s];
    [env] carries the constant-interning environment of
    {!Parse.database_result} so deltas may use the same identifier
    constants as the [.facts] file.  The epoch starts at 0. *)
val open_db : ?env:Parse.db_env -> Structure.t -> db

val structure : db -> Structure.t
val epoch : db -> int

(** [resolve d spec] interns a parsed delta against the session:
    identifier constants resolve through the load-time environment,
    the relation must exist in the (fixed) signature with the right
    arity, and every element must lie in the (fixed) universe. *)
val resolve : db -> Delta_parse.spec -> (update, Ucqc_error.t) result

(** [validate d u] runs the {!resolve}-level checks on an already
    interned update (relation, arity, universe) without applying it —
    the server validates a whole [apply] batch before touching the
    database, making batches atomic. *)
val validate : db -> update -> (unit, Ucqc_error.t) result

(** The receipt of one accepted update: [changed] is false for no-op
    updates (inserting a present tuple, deleting an absent one), which
    do {e not} advance the epoch. *)
type applied = {
  upd : update;
  changed : bool;
  epoch : int;  (** session epoch after the update *)
  before : Structure.t;
  after : Structure.t;
}

(** [apply d u] validates and applies one update. *)
val apply : db -> update -> (applied, Ucqc_error.t) result

(** {1 Per-query maintained states} *)

type state

(** [prepare ?budget psi d] classifies [psi] and builds its maintained
    state over the session's current database.  Total: tier-A/B
    construction failures (uncovered signature, budget exhaustion)
    fall back to an un-maintained state rather than erroring — a later
    recompute will surface whatever the real problem is, identically
    to the one-shot path. *)
val prepare : ?budget:Budget.t -> Ucq.t -> db -> state

val query : state -> Ucq.t

(** The tier the classifier selected, with its reason. *)
val selection : state -> Tier.selection

(** [effective_tier st] is the tier the state currently operates at —
    the selected tier, or [C] after degradation. *)
val effective_tier : state -> Tier.t

(** [degraded st] is the degradation reason, if the tier-A/B state has
    been abandoned. *)
val degraded : state -> string option

(** [apply_state ?budget st d receipt] folds one accepted change into
    the maintained state.  Must be called once, in order, for every
    {!applied} with [changed = true]; a state that misses an epoch
    degrades rather than answer stale counts.  Never raises. *)
val apply_state : ?budget:Budget.t -> state -> db -> applied -> unit

(** Where a served count came from. *)
type source =
  | Maintained  (** read off the live tier-A/B state *)
  | Memoized  (** an exact recompute recorded at this epoch *)

(** [maintained_count st d] is the current count if the state can
    answer without recomputation: a live tier-A/B state synced to the
    session epoch, or a valid epoch-tagged memo.  [None] means the
    caller must recompute (and should then {!memoize}). *)
val maintained_count : state -> db -> (int * source) option

(** [memoize st d n] records an {e exact} recomputed count for the
    current epoch (approximate/degraded results must not be
    memoized). *)
val memoize : state -> db -> int -> unit

(** {1 Rendering} *)

(** [render_facts s] renders a structure in the [.facts] syntax
    ([universe { ... }] plus one fact per line) such that
    [Parse.database_result] reads back an equal structure — the bridge
    the consistency harness uses to compare a mutated session against
    a one-shot count.  Caveat: the facts syntax cannot declare a
    relation with no tuples, so symbols whose relation is empty are
    absent from the re-parsed signature. *)
val render_facts : Structure.t -> string
