(** Combinatorial enumeration helpers used throughout the library.

    Most of the paper's algorithms (the CQ expansion of Lemma 26, the META
    algorithm of Lemma 38, the upper bounds of Theorems 7 and 8) iterate over
    all subsets [J] of the index set [{0, ..., l-1}] of a union of
    conjunctive queries.  This module provides the corresponding subset
    iterators together with a few other small enumeration utilities. *)

(** [subsets_fold f acc n] folds [f] over all [2^n] subsets of
    [{0, ..., n-1}], each presented as a sorted list.  Subsets are visited in
    increasing order of their bitmask encoding.  [n] must be at most 62. *)
let subsets_fold (f : 'a -> int list -> 'a) (acc : 'a) (n : int) : 'a =
  if n < 0 || n > 62 then invalid_arg "Combinat.subsets_fold";
  let acc = ref acc in
  for mask = 0 to (1 lsl n) - 1 do
    let members = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then members := i :: !members
    done;
    acc := f !acc !members
  done;
  !acc

(** [subsets n] is the list of all subsets of [{0, ..., n-1}] as sorted
    lists, in bitmask order.  Intended for small [n] only. *)
let subsets (n : int) : int list list =
  List.rev (subsets_fold (fun acc s -> s :: acc) [] n)

(** [nonempty_subsets n] is [subsets n] without the empty set. *)
let nonempty_subsets (n : int) : int list list =
  List.filter (fun s -> s <> []) (subsets n)

(** [subsets_of_list xs] enumerates all subsets of the list [xs] (preserving
    the relative order of elements within each subset). *)
let subsets_of_list (xs : 'a list) : 'a list list =
  List.fold_left
    (fun acc x -> acc @ List.map (fun s -> s @ [ x ]) acc)
    [ [] ] xs

(** [ksubsets k xs] enumerates all size-[k] subsets of [xs], preserving
    relative order. *)
let rec ksubsets (k : int) (xs : 'a list) : 'a list list =
  if k = 0 then [ [] ]
  else
    match xs with
    | [] -> []
    | x :: rest ->
        List.map (fun s -> x :: s) (ksubsets (k - 1) rest) @ ksubsets k rest

(** [pairs xs] is the list of all unordered pairs of distinct elements of
    [xs] (as ordered tuples following the list order). *)
let pairs (xs : 'a list) : ('a * 'a) list =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go xs

(** [permutations xs] enumerates all permutations of [xs].  Intended for
    small lists (isomorphism brute-force fallbacks in tests). *)
let rec permutations (xs : 'a list) : 'a list list =
  let rec remove_one x = function
    | [] -> []
    | y :: ys -> if y = x then ys else y :: remove_one x ys
  in
  match xs with
  | [] -> [ [] ]
  | _ ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (permutations (remove_one x xs)))
        xs

(** [cartesian xss] is the cartesian product of the lists in [xss]; the
    result enumerates one choice from each input list, in input order. *)
let rec cartesian (xss : 'a list list) : 'a list list =
  match xss with
  | [] -> [ [] ]
  | xs :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun x -> List.map (fun t -> x :: t) tails) xs

(** [tuples n xs] enumerates all length-[n] tuples over the alphabet
    [xs] (i.e. [xs^n]). *)
let tuples (n : int) (xs : 'a list) : 'a list list =
  cartesian (List.init n (fun _ -> xs))

(** [tuples_seq n xs] enumerates [xs^n] lazily, in exactly the order of
    {!tuples} (position 0 most significant), without materialising the
    [|xs|^n]-element product. *)
let tuples_seq (n : int) (xs : 'a list) : 'a list Seq.t =
  let rec go n =
    if n = 0 then Seq.return []
    else
      Seq.concat_map
        (fun x -> Seq.map (fun t -> x :: t) (go (n - 1)))
        (List.to_seq xs)
  in
  go n

(** [num_tuples n xs] is [|xs|^n] — the length of {!tuples_seq}. *)
let num_tuples (n : int) (xs : 'a list) : int =
  let rec go acc b e = if e = 0 then acc else go (acc * b) b (e - 1) in
  go 1 (List.length xs) n

(** [tuple_of_index n xs idx] is the [idx]-th element of [tuples n xs]
    (mixed-radix decoding, position 0 most significant) — the random
    access that lets a domain pool split an assignment sweep into index
    ranges without materialising anything. *)
let tuple_of_index (n : int) (xs : 'a list) (idx : int) : 'a list =
  let arr = Array.of_list xs in
  let b = Array.length arr in
  if n = 0 then []
  else if b = 0 then invalid_arg "Combinat.tuple_of_index: empty alphabet"
  else begin
    let rec go i idx acc =
      if i < 0 then acc else go (i - 1) (idx / b) (arr.(idx mod b) :: acc)
    in
    go (n - 1) idx []
  end

(** [binomial n k] is the binomial coefficient [n choose k], computed with
    native integers (callers keep [n] small enough to avoid overflow). *)
let binomial (n : int) (k : int) : int =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let num = ref 1 in
    for i = 0 to k - 1 do
      num := !num * (n - i) / (i + 1)
    done;
    !num
  end

(** [range n] is [[0; 1; ...; n-1]]. *)
let range (n : int) : int list = List.init n (fun i -> i)

(** [power_int b e] is [b^e] over native integers ([e >= 0]). *)
let power_int (b : int) (e : int) : int =
  if e < 0 then invalid_arg "Combinat.power_int";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e asr 1)
    else go acc (b * b) (e asr 1)
  in
  go 1 b e
