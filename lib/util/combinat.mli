(** Combinatorial enumeration: the subset iterators behind the CQ expansion
    (Lemma 26), the META algorithm (Lemma 38), and the Theorem 7/8 upper
    bounds. *)

(** [subsets_fold f acc n] folds over all [2^n] subsets of [{0..n-1}] (as
    sorted lists, in bitmask order).
    @raise Invalid_argument for [n] outside [0..62]. *)
val subsets_fold : ('a -> int list -> 'a) -> 'a -> int -> 'a

(** [subsets n] lists all subsets (small [n] only). *)
val subsets : int -> int list list

val nonempty_subsets : int -> int list list

(** [subsets_of_list xs] enumerates subsets preserving element order. *)
val subsets_of_list : 'a list -> 'a list list

(** [ksubsets k xs] enumerates size-[k] subsets. *)
val ksubsets : int -> 'a list -> 'a list list

(** [pairs xs] lists unordered pairs of distinct positions. *)
val pairs : 'a list -> ('a * 'a) list

(** [permutations xs] enumerates permutations (small lists). *)
val permutations : 'a list -> 'a list list

(** [cartesian xss] is the cartesian product. *)
val cartesian : 'a list list -> 'a list list

(** [tuples n xs] is [xs^n]. *)
val tuples : int -> 'a list -> 'a list list

(** [tuples_seq n xs] is [xs^n] lazily, in the order of {!tuples}. *)
val tuples_seq : int -> 'a list -> 'a list Seq.t

(** [num_tuples n xs] is [|xs|^n]. *)
val num_tuples : int -> 'a list -> int

(** [tuple_of_index n xs idx] is the [idx]-th tuple of {!tuples} by
    mixed-radix decoding (random access for chunked parallel sweeps).
    @raise Invalid_argument for an empty alphabet with [n > 0]. *)
val tuple_of_index : int -> 'a list -> int -> 'a list

(** [binomial n k] is [n choose k] over native ints. *)
val binomial : int -> int -> int

(** [range n] is [[0; ...; n-1]]. *)
val range : int -> int list

(** [power_int b e] is [b^e] over native ints, [e >= 0]. *)
val power_int : int -> int -> int
