(** A textual front-end for conjunctive queries, unions, and databases.

    Query syntax (Datalog-flavoured):

    {v
      (x, y) :- E(x, z), E(z, y) ; E(x, y)
    v}

    — the head tuple lists the free variables; disjuncts are separated by
    [;]; each disjunct is a comma-separated list of atoms.  Variables not
    appearing in the head are existentially quantified (per disjunct).
    A nullary head is written [()].  Comments start with [#] and run to the
    end of the line.

    Database syntax: a sequence of facts, optionally preceded by a
    [universe] declaration listing extra (isolated) elements:

    {v
      universe { a, b, 7 }
      E(1, 2). E(2, 3). Likes(alice, post1).
    v}

    Constants may be integers (used as themselves) or identifiers
    (interned to fresh integers above every literal); the returned
    environment maps names to ids.

    All syntax and semantic errors are reported as structured
    {!Ucqc_error.t} values with 1-based line/column positions through the
    [_result] entry points; the legacy functions re-raise the rendered
    message as {!Parse_error} for callers that predate structured
    errors. *)

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Positions                                                          *)
(* ------------------------------------------------------------------ *)

type pos = { line : int; col : int }

(** Raise the structured error over a full start/end span (end-exclusive,
    1-based); the [_result] wrappers catch it at the entry-point
    boundary. *)
let error_span (start : pos) (fin : pos) (msg : string) : 'a =
  raise
    (Ucqc_error.Error
       (Ucqc_error.Parse_error
          {
            line = start.line;
            col = start.col;
            end_line = fin.line;
            end_col = fin.col;
            msg;
          }))

(** Zero-width-span variant for point positions (end-of-input). *)
let error_at (p : pos) (msg : string) : 'a = error_span p p msg

(* ------------------------------------------------------------------ *)
(* Tokeniser                                                          *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Int of int
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Comma
  | Semicolon
  | Turnstile (* ":-" *)
  | Dot

(** A token together with the 1-based position of its first character and
    the (end-exclusive) position one past its last character.  Tokens
    never span lines, so [fin.line = pos.line] always. *)
type ptoken = { tok : token; pos : pos; fin : pos }

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(** [tokenize s] scans [s] into positioned tokens and also returns the
    position one past the last character (where end-of-input errors are
    reported). *)
let tokenize (s : string) : ptoken list * pos =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  let col = ref 1 in
  let advance () =
    (if s.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  (* the scanning loop only advances within a line while inside a token,
     so the end-exclusive position is always the current scan position *)
  let push tok p =
    tokens := { tok; pos = p; fin = { line = !line; col = !col } } :: !tokens
  in
  while !i < n do
    let c = s.[!i] in
    let here = { line = !line; col = !col } in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance ()
    else if c = '#' then begin
      while !i < n && s.[!i] <> '\n' do
        advance ()
      done
    end
    else if c = '(' then (advance (); push Lparen here)
    else if c = ')' then (advance (); push Rparen here)
    else if c = '{' then (advance (); push Lbrace here)
    else if c = '}' then (advance (); push Rbrace here)
    else if c = ',' then (advance (); push Comma here)
    else if c = ';' then (advance (); push Semicolon here)
    else if c = '.' then (advance (); push Dot here)
    else if c = ':' && !i + 1 < n && s.[!i + 1] = '-' then begin
      advance ();
      advance ();
      push Turnstile here
    end
    else if
      (c >= '0' && c <= '9')
      || (c = '-' && !i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9')
    then begin
      let start = !i in
      advance ();
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        advance ()
      done;
      let text = String.sub s start (!i - start) in
      match int_of_string_opt text with
      | Some k -> push (Int k) here
      | None ->
          error_span here
            { line = !line; col = !col }
            (Printf.sprintf "integer literal %s out of range" text)
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        advance ()
      done;
      push (Ident (String.sub s start (!i - start))) here
    end
    else
      error_span here
        { line = !line; col = !col + 1 }
        (Printf.sprintf "unexpected character %C" c)
  done;
  (List.rev !tokens, { line = !line; col = !col })

(* ------------------------------------------------------------------ *)
(* Query parsing                                                      *)
(* ------------------------------------------------------------------ *)

(** A parsed atom, carrying the full span from the first character of the
    relation symbol to one past the closing parenthesis, so that interning
    errors (arity clashes, constants) and lint diagnostics point at their
    source. *)
type atom = { rel : string; args : string list; apos : pos; aend : pos }

(** Abstract syntax of a parsed UCQ before variable interning.
    [head_pos]/[head_end] span the head tuple including its parentheses. *)
type ast = {
  head : string list;
  head_pos : pos;
  head_end : pos;
  disjuncts : atom list list;
}

(** Position of the next token, or of end-of-input. *)
let here ~(eof : pos) = function [] -> eof | (t : ptoken) :: _ -> t.pos

(** Span of the next token (zero-width at end-of-input). *)
let error_here ~(eof : pos) (ts : ptoken list) (msg : string) : 'a =
  match ts with
  | [] -> error_at eof msg
  | t :: _ -> error_span t.pos t.fin msg

let parse_term ~eof = function
  | { tok = Ident v; _ } :: rest -> (v, rest)
  | { tok = Int k; _ } :: rest -> (string_of_int k, rest)
  | ts -> error_here ~eof ts "expected a variable or constant"

(** Returns the terms, the end-exclusive position of the closing [')'],
    and the remaining tokens. *)
let rec parse_term_list ~eof acc tokens =
  let t, rest = parse_term ~eof tokens in
  match rest with
  | { tok = Comma; _ } :: rest -> parse_term_list ~eof (t :: acc) rest
  | { tok = Rparen; fin; _ } :: rest -> (List.rev (t :: acc), fin, rest)
  | ts -> error_here ~eof ts "expected ',' or ')' in argument list"

let parse_args ~eof = function
  | { tok = Lparen; _ } :: { tok = Rparen; fin; _ } :: rest -> ([], fin, rest)
  | { tok = Lparen; _ } :: rest -> parse_term_list ~eof [] rest
  | ts -> error_here ~eof ts "expected '('"

let parse_atom ~eof = function
  | { tok = Ident rel; pos; _ } :: rest ->
      let args, aend, rest = parse_args ~eof rest in
      ({ rel; args; apos = pos; aend }, rest)
  | ts -> error_here ~eof ts "expected a relation name"

let rec parse_conjunction ~eof acc tokens =
  let atom, rest = parse_atom ~eof tokens in
  match rest with
  | { tok = Comma; _ } :: rest -> parse_conjunction ~eof (atom :: acc) rest
  | _ -> (List.rev (atom :: acc), rest)

let rec parse_union ~eof acc tokens =
  let conj, rest = parse_conjunction ~eof [] tokens in
  match rest with
  | { tok = Semicolon; _ } :: rest -> parse_union ~eof (conj :: acc) rest
  | [] | [ { tok = Dot; _ } ] -> List.rev (conj :: acc)
  | ts -> error_here ~eof ts "expected ';' or end of query"

(** [parse_ast text] parses the surface syntax into an AST. *)
let parse_ast (text : string) : ast =
  let tokens, eof = tokenize text in
  match tokens with
  | { tok = Lparen; pos = head_pos; _ } :: rest ->
      let head, head_end, rest =
        match rest with
        | { tok = Rparen; fin; _ } :: rest -> ([], fin, rest)
        | _ -> parse_term_list ~eof [] rest
      in
      (match rest with
      | { tok = Turnstile; _ } :: body ->
          { head; head_pos; head_end; disjuncts = parse_union ~eof [] body }
      | ts -> error_here ~eof ts "expected ':-' after the head")
  | ts ->
      error_here ~eof ts "a query starts with its head tuple '(x, ...)'"

(* ------------------------------------------------------------------ *)
(* Interning: AST -> Ucq.t                                            *)
(* ------------------------------------------------------------------ *)

(** Variable environment of a parsed query: free variables in head order
    (shared across disjuncts) and, per disjunct, the quantified names. *)
type query_env = {
  free_names : (string * int) list;
  signature : Signature.t;
}

let infer_signature (disjuncts : atom list list) : Signature.t =
  let arities = Hashtbl.create 8 in
  List.iter
    (List.iter (fun a ->
         match Hashtbl.find_opt arities a.rel with
         | None -> Hashtbl.add arities a.rel (List.length a.args)
         | Some k ->
             if k <> List.length a.args then
               raise
                 (Ucqc_error.Error
                    (Ucqc_error.Arity_mismatch
                       { rel = a.rel; expected = k; got = List.length a.args }))))
    disjuncts;
  Signature.make
    (Hashtbl.fold (fun name arity acc -> Signature.symbol name arity :: acc) arities [])

(** [dedupe_atoms conj] drops syntactically duplicate atoms (same relation
    symbol, same argument names) within one disjunct, keeping the first
    occurrence.  Count-preserving: a CQ's structure stores relations with
    set semantics, so a repeated atom adds no constraint — dropping it
    early just shrinks the per-subset work of the inclusion–exclusion and
    expansion engines (every combined query [∧(Ψ|J)] inherits the smaller
    atom list). *)
let dedupe_atoms (conj : atom list) : atom list =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun a ->
      let key = (a.rel, a.args) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    conj

(** [ucq_of_ast ast] interns variables and builds the {!Ucq.t}: head
    variables get ids [0, 1, ...] in head order; quantified variables get
    fresh ids per disjunct.  Duplicate atoms within a disjunct are dropped
    (see {!dedupe_atoms}). *)
let ucq_of_ast (ast : ast) : Ucq.t * query_env =
  if ast.disjuncts = [] then
    error_span ast.head_pos ast.head_end "empty union";
  (* the CQ model of the paper has no constants: reject numeric terms *)
  List.iter
    (fun (v, p, e) ->
      if int_of_string_opt v <> None then
        error_span p e "constants are not supported in queries")
    (List.map (fun v -> (v, ast.head_pos, ast.head_end)) ast.head
    @ List.concat_map
        (fun conj ->
          List.concat_map
            (fun a -> List.map (fun v -> (v, a.apos, a.aend)) a.args)
            conj)
        ast.disjuncts);
  let dup =
    List.exists
      (fun v -> List.length (List.filter (( = ) v) ast.head) > 1)
      ast.head
  in
  if dup then
    error_span ast.head_pos ast.head_end "duplicate variable in the head";
  let signature = infer_signature ast.disjuncts in
  let free_names = List.mapi (fun i v -> (v, i)) ast.head in
  let next = ref (List.length ast.head) in
  let cqs =
    List.map
      (fun conj ->
        let conj = dedupe_atoms conj in
        let local = Hashtbl.create 8 in
        List.iter (fun (v, i) -> Hashtbl.replace local v i) free_names;
        let intern v =
          match Hashtbl.find_opt local v with
          | Some i -> i
          | None ->
              let i = !next in
              incr next;
              Hashtbl.replace local v i;
              i
        in
        let rels =
          List.map (fun a -> (a.rel, [ List.map intern a.args ])) conj
        in
        let universe =
          List.map snd free_names
          @ Hashtbl.fold (fun _ i acc -> i :: acc) local []
        in
        Cq.make (Structure.make signature universe rels) (List.map snd free_names))
      ast.disjuncts
  in
  (Ucq.make cqs, { free_names; signature })

(* ------------------------------------------------------------------ *)
(* Database parsing                                                   *)
(* ------------------------------------------------------------------ *)

type db_env = { constants : (string * int) list }

let database_of_tokens (tokens : ptoken list) (eof : pos) :
    Structure.t * db_env =
  (* optional universe declaration *)
  let extra, tokens =
    match tokens with
    | { tok = Ident "universe"; _ } :: { tok = Lbrace; _ } :: rest ->
        let rec grab acc = function
          | { tok = Int k; _ } :: { tok = Comma; _ } :: rest ->
              grab (`I k :: acc) rest
          | { tok = Int k; _ } :: { tok = Rbrace; _ } :: rest ->
              (List.rev (`I k :: acc), rest)
          | { tok = Ident v; _ } :: { tok = Comma; _ } :: rest ->
              grab (`S v :: acc) rest
          | { tok = Ident v; _ } :: { tok = Rbrace; _ } :: rest ->
              (List.rev (`S v :: acc), rest)
          | { tok = Rbrace; _ } :: rest -> (List.rev acc, rest)
          | ts -> error_at (here ~eof ts) "malformed universe declaration"
        in
        grab [] rest
    | _ -> ([], tokens)
  in
  (* parse facts *)
  let rec parse_facts acc tokens =
    match tokens with
    | [] -> List.rev acc
    | { tok = Dot; _ } :: rest -> parse_facts acc rest
    | _ ->
        let atom, rest = parse_atom ~eof tokens in
        parse_facts (atom :: acc) rest
  in
  let facts = parse_facts [] tokens in
  (* interning *)
  let max_literal =
    List.fold_left
      (fun acc (a : atom) ->
        List.fold_left
          (fun acc arg ->
            match int_of_string_opt arg with Some k -> max acc k | None -> acc)
          acc a.args)
      (List.fold_left
         (fun acc -> function `I k -> max acc k | `S _ -> acc)
         (-1) extra)
      facts
  in
  let interned = Hashtbl.create 16 in
  let next = ref (max_literal + 1) in
  let elem_of p arg =
    match int_of_string_opt arg with
    | Some k ->
        if k < 0 then error_at p "negative constants are not allowed";
        k
    | None -> (
        match Hashtbl.find_opt interned arg with
        | Some i -> i
        | None ->
            let i = !next in
            incr next;
            Hashtbl.replace interned arg i;
            i)
  in
  let extra_elems =
    (* the declaration's own position is close enough for its elements *)
    let p = { line = 1; col = 1 } in
    List.map (function `I k -> k | `S v -> elem_of p v) extra
  in
  let signature = infer_signature [ facts ] in
  let rels =
    List.map (fun (a : atom) -> (a.rel, [ List.map (elem_of a.apos) a.args ])) facts
  in
  let universe =
    extra_elems @ List.concat_map (fun (_, ts) -> List.concat ts) rels
  in
  let s = Structure.make signature universe rels in
  (s, { constants = Hashtbl.fold (fun k v acc -> (k, v) :: acc) interned [] })

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

(** [ast_result text] parses the surface syntax into the positioned AST
    without interning — the entry point of the static analyzer, which
    needs the atom spans and original variable names that {!Ucq.t}
    discards. *)
let ast_result (text : string) : (ast, Ucqc_error.t) result =
  match parse_ast text with
  | v -> Ok v
  | exception Ucqc_error.Error e -> Error e

(** [intern_result ast] is the non-raising wrapper of {!ucq_of_ast}. *)
let intern_result (ast : ast) : (Ucq.t * query_env, Ucqc_error.t) result =
  match ucq_of_ast ast with
  | v -> Ok v
  | exception Ucqc_error.Error e -> Error e

(** [ucq_result text] parses a UCQ from its surface syntax, reporting
    failures as structured errors. *)
let ucq_result (text : string) : (Ucq.t * query_env, Ucqc_error.t) result =
  match ucq_of_ast (parse_ast text) with
  | v -> Ok v
  | exception Ucqc_error.Error e -> Error e

(** [cq_result text] parses a single conjunctive query (no [;] allowed). *)
let cq_result (text : string) : (Cq.t * query_env, Ucqc_error.t) result =
  match ucq_result text with
  | Error e -> Error e
  | Ok (psi, env) ->
      if Ucq.length psi <> 1 then
        Error (Ucqc_error.parse_error_at ~line:1 ~col:1 "expected a single CQ")
      else Ok (Ucq.disjunct psi 0, env)

(** [database_result text] parses a fact list into a structure. *)
let database_result (text : string) :
    (Structure.t * db_env, Ucqc_error.t) result =
  match
    let tokens, eof = tokenize text in
    database_of_tokens tokens eof
  with
  | v -> Ok v
  | exception Ucqc_error.Error e -> Error e

(* Legacy exception-raising API: structured errors are rendered to the
   historical string-carrying exception. *)

let of_result = function
  | Ok v -> v
  | Error e -> raise (Parse_error (Ucqc_error.to_string e))

(** [ucq text] parses a UCQ from its surface syntax. *)
let ucq (text : string) : Ucq.t * query_env = of_result (ucq_result text)

(** [cq text] parses a single conjunctive query (no [;] allowed). *)
let cq (text : string) : Cq.t * query_env = of_result (cq_result text)

(** [database text] parses a fact list into a structure.  Integer literals
    denote themselves; identifier constants are interned to fresh integers
    above every literal. *)
let database (text : string) : Structure.t * db_env =
  of_result (database_result text)
