(** A textual front-end for conjunctive queries, unions, and databases.

    Query syntax (Datalog-flavoured): the head tuple lists the free
    variables, disjuncts are separated by [;], atoms by [,]; variables not
    in the head are existentially quantified per disjunct; [#] starts a
    line comment:

    {v  (x, y) :- E(x, z), E(z, y) ; E(x, y)  v}

    Database syntax: facts terminated by [.], with an optional [universe]
    declaration adding isolated elements; integer constants denote
    themselves, identifier constants are interned:

    {v  universe { 7, spare }
        E(1, 2). Likes(alice, post1).  v} *)

(** Legacy string-carrying parse exception, raised only by the
    exception-based entry points {!ucq}, {!cq} and {!database}; prefer the
    [_result] variants, which report structured {!Ucqc_error.t} values
    with 1-based line/column positions. *)
exception Parse_error of string

(** {2 Positions and the analyzer-facing AST}

    All positions are 1-based; spans are end-exclusive ([aend] points one
    past the last character of the atom). *)

type pos = { line : int; col : int }

(** A parsed atom before interning: original names, full source span. *)
type atom = { rel : string; args : string list; apos : pos; aend : pos }

(** A parsed UCQ before interning: the raw material of lint rules, which
    need spans and surface names that {!Ucq.t} discards. *)
type ast = {
  head : string list;
  head_pos : pos;
  head_end : pos;
  disjuncts : atom list list;
}

(** [ast_result text] parses the surface syntax into the positioned AST
    (no interning, no constant/arity checks beyond tokenisation). *)
val ast_result : string -> (ast, Ucqc_error.t) result

(** Variable environment of a parsed query. *)
type query_env = {
  free_names : (string * int) list;  (** head variables, in head order *)
  signature : Signature.t;  (** inferred from the atoms *)
}

(** [intern_result ast] validates and interns an AST into a {!Ucq.t}:
    arity clashes and constants become structured errors; syntactically
    duplicate atoms within a disjunct are dropped (count-preserving, a
    pure speedup for the subset-exponential engines). *)
val intern_result : ast -> (Ucq.t * query_env, Ucqc_error.t) result

(** Constant-interning environment of a parsed database. *)
type db_env = { constants : (string * int) list }

(** [ucq_result text] parses a union of conjunctive queries.  Malformed
    input yields [Error (Parse_error {line; col; _})] pointing at the
    offending token (1-based); arity clashes yield
    [Error (Arity_mismatch _)]. *)
val ucq_result : string -> (Ucq.t * query_env, Ucqc_error.t) result

(** [cq_result text] parses a single conjunctive query (no [;]). *)
val cq_result : string -> (Cq.t * query_env, Ucqc_error.t) result

(** [database_result text] parses a fact list into a structure. *)
val database_result : string -> (Structure.t * db_env, Ucqc_error.t) result

(** [ucq text] parses a union of conjunctive queries.
    @raise Parse_error on malformed input (including constants in queries
    and arity clashes). *)
val ucq : string -> Ucq.t * query_env

(** [cq text] parses a single conjunctive query (no [;]).
    @raise Parse_error as {!ucq}, or when the union has several
    disjuncts. *)
val cq : string -> Cq.t * query_env

(** [database text] parses a fact list into a structure.
    @raise Parse_error on malformed input. *)
val database : string -> Structure.t * db_env
