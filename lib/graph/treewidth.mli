(** Treewidth: greedy upper bounds, a minor-based lower bound, and an exact
    branch-and-bound solver — the engine behind every tractability
    criterion in the paper (Theorems 1/2/3, Definition 57, Theorems 7/8). *)

type heuristic_kind = Min_fill | Min_degree

(** [heuristic_order kind g] is a greedy elimination order. *)
val heuristic_order : heuristic_kind -> Graph.t -> int list

(** [order_width g order] is the width of an elimination order. *)
val order_width : Graph.t -> int list -> int

(** [heuristic g] is the better of the min-fill and min-degree upper
    bounds, with a witnessing valid decomposition. *)
val heuristic : Graph.t -> int * Treedec.t

(** [lower_bound g] is the minor-min-width lower bound. *)
val lower_bound : Graph.t -> int

(** [exact_order ?budget ?pool g] is an optimal elimination order, found
    by QuickBB-style branch and bound (simplicial-vertex rule,
    minor-min-width pruning).  Exponential; intended for query-sized
    graphs.  The budget, when given, is ticked once per expanded search
    node and raises {!Budget.Exhausted} when spent.  A parallel [?pool]
    runs the root-level branches on worker domains with a shared atomic
    best bound: the width found is the exact minimum regardless of
    scheduling, though the witnessing order may differ; [jobs = 1] (or no
    pool) is the sequential search, bit-for-bit. *)
val exact_order : ?budget:Budget.t -> ?pool:Pool.t -> Graph.t -> int list

(** [exact ?budget ?pool g] is the exact treewidth with a witnessing
    decomposition.
    @raise Budget.Exhausted when the budget runs out mid-search. *)
val exact : ?budget:Budget.t -> ?pool:Pool.t -> Graph.t -> int * Treedec.t

(** [treewidth ?budget ?pool g] is the exact treewidth ([-1] for the empty
    graph). *)
val treewidth : ?budget:Budget.t -> ?pool:Pool.t -> Graph.t -> int
