(** Treewidth computation: heuristics, lower bounds, and an exact
    branch-and-bound solver.

    Every tractability criterion in the paper is a statement about treewidth:
    Theorem 2 (treewidth of the combined queries), Theorem 3 (plus the
    treewidth of their contracts), Definition 57 (hereditary treewidth) and
    Theorems 7/8 (WL-dimension = hereditary treewidth).  Query graphs are
    small, so an exact exponential algorithm is appropriate — we implement a
    QuickBB-style branch and bound over elimination orderings with a
    minor-min-width lower bound, the simplicial-vertex rule, and a min-fill
    initial upper bound.  The [O(sqrt(log k))]-approximation of Theorem 7 is
    modelled by the polynomial-time {!heuristic} upper bound paired with the
    {!lower_bound}. *)

module Intset = Intset

(* ------------------------------------------------------------------ *)
(* Heuristic elimination orders                                       *)
(* ------------------------------------------------------------------ *)

(** Number of fill-in edges created by eliminating [v] from [g] (restricted
    to the vertex set [alive]). *)
let fill_in_cost (adj : Intset.t array) (alive : bool array) (v : int) : int =
  let nbrs = Intset.filter (fun w -> alive.(w)) adj.(v) in
  let nl = Intset.to_list nbrs in
  let missing = ref 0 in
  let rec go = function
    | [] -> ()
    | a :: rest ->
        List.iter (fun b -> if not (Intset.mem b adj.(a)) then incr missing) rest;
        go rest
  in
  go nl;
  !missing

type heuristic_kind = Min_fill | Min_degree

(** [heuristic_order kind g] computes an elimination order greedily: at each
    step eliminate the vertex with minimum fill-in ([Min_fill]) or minimum
    degree ([Min_degree]) in the current filled graph. *)
let heuristic_order (kind : heuristic_kind) (g : Graph.t) : int list =
  let n = Graph.num_vertices g in
  let adj = Array.init n (fun v -> Graph.neighbours g v) in
  let alive = Array.make n true in
  let order = ref [] in
  for _ = 1 to n do
    let best = ref (-1) in
    let best_cost = ref max_int in
    for v = 0 to n - 1 do
      if alive.(v) then begin
        let cost =
          match kind with
          | Min_fill -> fill_in_cost adj alive v
          | Min_degree ->
              Intset.cardinal (Intset.filter (fun w -> alive.(w)) adj.(v))
        in
        if cost < !best_cost then begin
          best_cost := cost;
          best := v
        end
      end
    done;
    let v = !best in
    (* eliminate: clique-ify the live neighbourhood *)
    let nbrs = Intset.to_list (Intset.filter (fun w -> alive.(w)) adj.(v)) in
    let rec cliqueify = function
      | [] -> ()
      | a :: rest ->
          List.iter
            (fun b ->
              adj.(a) <- Intset.add b adj.(a);
              adj.(b) <- Intset.add a adj.(b))
            rest;
          cliqueify rest
    in
    cliqueify nbrs;
    alive.(v) <- false;
    order := v :: !order
  done;
  List.rev !order

(** Width of an elimination order (max live degree at elimination time). *)
let order_width (g : Graph.t) (order : int list) : int =
  let d = Treedec.of_elimination_order g order in
  Treedec.width d

(** [heuristic g] returns the better of the min-fill and min-degree upper
    bounds, together with a witnessing (valid) tree decomposition. *)
let heuristic (g : Graph.t) : int * Treedec.t =
  if Graph.num_vertices g = 0 then (-1, { Treedec.bags = [||]; tree = [] })
  else begin
    Telemetry.with_span
      ~attrs:(fun () -> [ ("n", Telemetry.I (Graph.num_vertices g)) ])
      "tw.heuristic"
    @@ fun () ->
    let o1 = heuristic_order Min_fill g in
    let o2 = heuristic_order Min_degree g in
    let d1 = Treedec.of_elimination_order g o1 in
    let d2 = Treedec.of_elimination_order g o2 in
    if Treedec.width d1 <= Treedec.width d2 then (Treedec.width d1, d1)
    else (Treedec.width d2, d2)
  end

(* ------------------------------------------------------------------ *)
(* Lower bound: minor-min-width (MMD+)                                *)
(* ------------------------------------------------------------------ *)

(** [lower_bound g] computes the minor-min-width lower bound: repeatedly
    contract a minimum-degree vertex into its lowest-degree neighbour,
    tracking the maximum over steps of the minimum degree.  Treewidth is
    minor-monotone and at least the minimum degree, so this is a valid lower
    bound. *)
let lower_bound (g : Graph.t) : int =
  let n = Graph.num_vertices g in
  if n = 0 then -1
  else begin
    let adj = Array.init n (fun v -> Graph.neighbours g v) in
    let alive = Array.make n true in
    let alive_count = ref n in
    let best = ref 0 in
    while !alive_count > 1 do
      (* find min-degree live vertex *)
      let v = ref (-1) in
      let dv = ref max_int in
      for u = 0 to n - 1 do
        if alive.(u) then begin
          let d = Intset.cardinal adj.(u) in
          if d < !dv then begin
            dv := d;
            v := u
          end
        end
      done;
      best := max !best !dv;
      if !dv = 0 then begin
        alive.(!v) <- false;
        decr alive_count
      end
      else begin
        (* contract v into its min-degree neighbour *)
        let w =
          Intset.fold
            (fun u acc ->
              match acc with
              | None -> Some u
              | Some b ->
                  if Intset.cardinal adj.(u) < Intset.cardinal adj.(b) then Some u
                  else acc)
            adj.(!v) None
        in
        match w with
        | None -> assert false
        | Some w ->
            (* merge neighbourhoods into w *)
            Intset.iter
              (fun u ->
                if u <> w then begin
                  adj.(w) <- Intset.add u adj.(w);
                  adj.(u) <- Intset.add w adj.(u)
                end;
                adj.(u) <- Intset.remove !v adj.(u))
              adj.(!v);
            adj.(w) <- Intset.remove !v adj.(w);
            alive.(!v) <- false;
            decr alive_count
      end
    done;
    !best
  end

(* ------------------------------------------------------------------ *)
(* Exact treewidth: branch and bound over elimination orders          *)
(* ------------------------------------------------------------------ *)

let tw_nodes_c = Telemetry.counter "tw.nodes"
let tw_incumbents_c = Telemetry.counter "tw.incumbents"

(** [is_clique adj s] — is [s] a clique in the filled graph [adj]? *)
let is_clique (adj : Intset.t array) (s : Intset.t) : bool =
  let l = Intset.to_list s in
  let rec go = function
    | [] -> true
    | a :: rest -> List.for_all (fun b -> Intset.mem b adj.(a)) rest && go rest
  in
  go l

(** Root candidates for the branch and bound: the simplicial-vertex rule
    applied to the full graph (a vertex whose neighbourhood is a clique
    can be eliminated first without loss), else every vertex. *)
let root_candidates (adj : Intset.t array) (alive : Intset.t) : int list =
  let remaining = Intset.to_list alive in
  match
    List.find_opt (fun v -> is_clique adj (Intset.inter adj.(v) alive)) remaining
  with
  | Some v -> [ v ]
  | None -> remaining

(** State for the branch-and-bound search: a mutable filled graph plus the
    set of remaining vertices.  The budget is ticked once per expanded
    search node, so an [of_steps] budget cuts the exponential search at a
    deterministic point.

    With a parallel [?pool], the root-level branches (one per candidate
    first-eliminated vertex) run on the worker domains, pruning through a
    shared atomic best bound; each branch copies the adjacency before
    mutating, and the root adjacency stays read-only.  The treewidth
    {e value} is the exact minimum either way; the witnessing order may
    depend on which branch lowered the bound first.  Without a pool (or
    with [jobs = 1]) the depth-first search is the sequential original,
    bit-for-bit, including its [Budget.tick] order. *)
let exact_order ?(budget : Budget.t option) ?(pool : Pool.t option)
    (g : Graph.t) : int list =
  let n = Graph.num_vertices g in
  if n = 0 then []
  else begin
    let ub, _ = heuristic g in
    Telemetry.with_span ?budget
      ~attrs:(fun () -> [ ("n", Telemetry.I n); ("ub", Telemetry.I ub) ])
      "tw.exact"
    @@ fun () ->
    (* the shared bound: an atomic read is free sequentially and makes the
       cross-branch pruning sound when root branches race on domains *)
    let best_width = Atomic.make ub in
    let best_lock = Mutex.create () in
    let best_order = ref (heuristic_order Min_fill g) in
    let bound () = Atomic.get best_width in
    let record (width : int) (order : int list) : unit =
      Mutex.protect best_lock (fun () ->
          if width < Atomic.get best_width then begin
            Atomic.set best_width width;
            Telemetry.incr tw_incumbents_c;
            best_order := order
          end)
    in
    (* Depth-first search over elimination prefixes. *)
    let rec search (adj : Intset.t array) (alive : Intset.t) (width_so_far : int)
        (prefix : int list) : unit =
      if Intset.is_empty alive then begin
        if width_so_far < bound () then record width_so_far (List.rev prefix)
      end
      else begin
        (* Lower bound on the completion: minor-min-width of the remainder. *)
        let remaining = Intset.to_list alive in
        let sub, map = Graph.induced (Graph.of_edges n
          (let acc = ref [] in
           List.iter (fun u ->
             Intset.iter (fun v -> if u < v && Intset.mem v alive then acc := (u, v) :: !acc)
               adj.(u)) remaining;
           !acc)) remaining in
        ignore map;
        let lb = max width_so_far (lower_bound sub) in
        if lb < bound () then begin
          (* Simplicial-vertex rule: a vertex whose live neighbourhood is a
             clique can always be eliminated first, without loss. *)
          let simplicial =
            List.find_opt
              (fun v -> is_clique adj (Intset.inter adj.(v) alive))
              remaining
          in
          let candidates =
            match simplicial with Some v -> [ v ] | None -> remaining
          in
          List.iter (expand adj alive width_so_far prefix) candidates
        end
      end
    (* expand one branch: eliminate [v] on a copied adjacency and recurse *)
    and expand (adj : Intset.t array) (alive : Intset.t) (width_so_far : int)
        (prefix : int list) (v : int) : unit =
      Budget.tick_opt budget;
      Telemetry.incr tw_nodes_c;
      let nbrs = Intset.inter adj.(v) alive in
      let deg = Intset.cardinal nbrs in
      let new_width = max width_so_far deg in
      if new_width < bound () then begin
        let adj' = Array.copy adj in
        let nl = Intset.to_list nbrs in
        let rec cliqueify = function
          | [] -> ()
          | a :: rest ->
              List.iter
                (fun b ->
                  adj'.(a) <- Intset.add b adj'.(a);
                  adj'.(b) <- Intset.add a adj'.(b))
                rest;
              cliqueify rest
        in
        cliqueify nl;
        search adj' (Intset.remove v alive) new_width (v :: prefix)
      end
    in
    let adj0 = Array.init n (fun v -> Graph.neighbours g v) in
    let alive0 = Intset.of_list (Graph.vertices g) in
    if not (Pool.is_parallel pool) then search adj0 alive0 0 []
    else begin
      (* root-level branching: one pool task per candidate first vertex *)
      let lb0 = lower_bound g in
      if lb0 < bound () then begin
        let candidates = Array.of_list (root_candidates adj0 alive0) in
        ignore
          (Pool.run (Option.get pool) ?budget
             ~f:(fun i -> expand adj0 alive0 0 [] candidates.(i))
             (Array.length candidates))
      end
    end;
    !best_order
  end

(** [exact ?budget g] computes the exact treewidth of [g] together with a
    witnessing valid tree decomposition.  Exponential in the worst case;
    intended for query-sized graphs (up to roughly 25 vertices).  With a
    budget, raises {!Budget.Exhausted} when the search is cut — callers
    wanting graceful degradation catch it at the engine boundary and fall
    back to {!heuristic}. *)
let exact ?(budget : Budget.t option) ?(pool : Pool.t option) (g : Graph.t) :
    int * Treedec.t =
  if Graph.num_vertices g = 0 then (-1, { Treedec.bags = [||]; tree = [] })
  else begin
    let order = exact_order ?budget ?pool g in
    let d = Treedec.of_elimination_order g order in
    (Treedec.width d, d)
  end

(** [treewidth ?budget ?pool g] is the exact treewidth as an integer
    (convention: the empty graph has treewidth [-1], matching
    [max bag - 1]). *)
let treewidth ?(budget : Budget.t option) ?(pool : Pool.t option) (g : Graph.t)
    : int =
  fst (exact ?budget ?pool g)
