(** Relational structures (databases) over integer universes
    (Section 2.2).  Immutable; universes and relations are kept sorted and
    duplicate-free. *)

type tuple = int list

type t

(** [make signature universe relations] validates arities and universe
    membership; symbols missing from [relations] get the empty relation. *)
val make : Signature.t -> int list -> (string * tuple list) list -> t

(** [empty signature] has an empty universe. *)
val empty : Signature.t -> t

val universe : t -> int list
val universe_set : t -> Intset.t
val universe_size : t -> int
val signature : t -> Signature.t

(** [relation a name] is the (sorted) tuple list of [name].
    @raise Invalid_argument for unknown symbols. *)
val relation : t -> string -> tuple list

val relations : t -> (string * tuple list) list

(** [size a] is the encoding size [|A| = |τ| + |U(A)| + Σ_R |R^A|·arity(R)]
    (Section 2.2). *)
val size : t -> int

val num_tuples : t -> int
val equal : t -> t -> bool
val compare_t : t -> t -> int

(** [add_tuples a name tuples] extends a relation (and the universe). *)
val add_tuples : t -> string -> tuple list -> t

(** [remove_tuples a name tuples] removes the listed tuples from a
    relation (absent tuples are ignored; the universe is unchanged, so
    isolated elements keep contributing to counts).
    @raise Invalid_argument for unknown symbols. *)
val remove_tuples : t -> string -> tuple list -> t

(** [extend a syms rels] adds fresh symbols with the given extensions,
    validating only the new tuples — unlike {!make} (and {!union},
    which routes through it), the existing relations are not re-checked
    or re-sorted, so the cost is [O(|universe| + |new tuples|)]
    independent of [a]'s size.  This is the constructor the delta
    engine leans on to attach neighbourhood-sized residual relations to
    a large database once per candidate.  Symbols already present in
    [a]'s signature, extensions for undeclared symbols, arity
    mismatches and out-of-universe elements all raise. *)
val extend : t -> Signature.symbol list -> (string * tuple list) list -> t

(** [union a b] is the structure union [A ∪ B] (Section 2.2); the
    underlying operation of the combined queries [∧(Ψ|J)]. *)
val union : t -> t -> t

(** @raise Invalid_argument on the empty list. *)
val union_all : t list -> t

(** [induced a elems] is the induced substructure. *)
val induced : t -> int list -> t

(** [is_substructure a b]: [U(A) ⊆ U(B)] and [R^A ⊆ R^B] pointwise. *)
val is_substructure : t -> t -> bool

(** [rename a f] applies an injective element renaming.
    @raise Invalid_argument if not injective on the universe. *)
val rename : t -> (int -> int) -> t

(** [delete_elements a elems] drops elements and every tuple mentioning
    them. *)
val delete_elements : t -> int list -> t

(** [isolated_elements a] lists elements occurring in no tuple. *)
val isolated_elements : t -> int list

(** [gaifman a] is the Gaifman graph over dense indices, with the
    dense-index → element mapping. *)
val gaifman : t -> Graph.t * int array

(** [treewidth ?budget a] is the treewidth of the Gaifman graph (exact).
    @raise Budget.Exhausted when the budget runs out mid-search. *)
val treewidth : ?budget:Budget.t -> ?pool:Pool.t -> t -> int

(** [tensor a b] is the tensor product [A ⊗ B] of Theorem 28, with the
    pair-encoding function. *)
val tensor : t -> t -> t * (int -> int -> int)

val pp_tuple : Format.formatter -> tuple -> unit
val pp : Format.formatter -> t -> unit
