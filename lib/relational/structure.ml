(** Relational structures (databases) over integer universes.

    Following Section 2.2 of the paper, a structure consists of a signature,
    a finite universe and one relation (a set of tuples over the universe)
    per relation symbol.  Databases and the structures [A_φ] associated with
    conjunctive queries share this representation.

    Invariants: the universe is a sorted duplicate-free list; each relation
    is a lexicographically sorted duplicate-free list of tuples of the
    symbol's arity over the universe; every signature symbol has an entry
    (possibly empty).  Structures are immutable; all operations are
    functional. *)

module Listx = Listx
module Intset = Intset

type tuple = int list

type t = {
  signature : Signature.t;
  universe : int list; (* sorted, duplicate-free *)
  relations : (string * tuple list) list; (* sorted by name, aligned with signature *)
}

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let normalize_tuples (tuples : tuple list) : tuple list =
  List.sort_uniq compare tuples

(** [make signature universe relations] builds a structure, validating that
    every tuple has the right arity and only mentions universe elements.
    Symbols absent from [relations] get the empty relation. *)
let make (signature : Signature.t) (universe : int list)
    (relations : (string * tuple list) list) : t =
  let universe = Listx.sort_uniq_ints universe in
  let uset = Intset.of_list universe in
  List.iter
    (fun (name, _) ->
      if not (Signature.mem signature name) then
        invalid_arg ("Structure.make: symbol not in signature: " ^ name))
    relations;
  let relations =
    List.map
      (fun (s : Signature.symbol) ->
        let tuples =
          List.concat_map
            (fun (name, ts) -> if name = s.name then ts else [])
            relations
        in
        List.iter
          (fun tup ->
            if List.length tup <> s.arity then
              invalid_arg
                (Printf.sprintf "Structure.make: arity mismatch in %s" s.name);
            List.iter
              (fun v ->
                if not (Intset.mem v uset) then
                  invalid_arg
                    (Printf.sprintf
                       "Structure.make: element %d not in universe (%s)" v
                       s.name))
              tup)
          tuples;
        (s.name, normalize_tuples tuples))
      signature
  in
  { signature; universe; relations }

(** [empty signature] is the structure with empty universe and relations. *)
let empty (signature : Signature.t) : t = make signature [] []

let universe (a : t) : int list = a.universe
let universe_set (a : t) : Intset.t = Intset.of_list a.universe
let universe_size (a : t) : int = List.length a.universe
let signature (a : t) : Signature.t = a.signature

(** [relation a name] is the tuple list of symbol [name] (empty when the
    symbol exists but has no tuples).
    @raise Invalid_argument for unknown symbols. *)
let relation (a : t) (name : string) : tuple list =
  match List.assoc_opt name a.relations with
  | Some ts -> ts
  | None -> invalid_arg ("Structure.relation: unknown symbol " ^ name)

let relations (a : t) : (string * tuple list) list = a.relations

(** [size a] is the encoding size |A| = |τ| + |U(A)| + Σ_R |R^A|·arity(R)
    from Section 2.2. *)
let size (a : t) : int =
  Signature.size a.signature
  + List.length a.universe
  + List.fold_left
      (fun acc (name, ts) ->
        acc + (List.length ts * Signature.arity_of a.signature name))
      0 a.relations

(** [num_tuples a] is the total number of tuples across all relations. *)
let num_tuples (a : t) : int =
  List.fold_left (fun acc (_, ts) -> acc + List.length ts) 0 a.relations

let equal (a : t) (b : t) : bool =
  Signature.equal a.signature b.signature
  && a.universe = b.universe && a.relations = b.relations

let compare_t (a : t) (b : t) : int = compare a b

(* ------------------------------------------------------------------ *)
(* Algebraic operations                                               *)
(* ------------------------------------------------------------------ *)

(** [add_tuples a name tuples] adds tuples to a relation, extending the
    universe with any new elements. *)
let add_tuples (a : t) (name : string) (tuples : tuple list) : t =
  let extra = List.concat tuples in
  make a.signature (a.universe @ extra)
    ((name, relation a name @ tuples)
    :: List.filter (fun (n, _) -> n <> name) a.relations)

(** [remove_tuples a name tuples] removes the listed tuples from a
    relation; absent tuples are ignored and the universe is kept as-is
    (the dynamic setting of Section 1.2 fixes the domain, and isolated
    elements still feed the [|U|^k] factor of isolated free
    variables). *)
let remove_tuples (a : t) (name : string) (tuples : tuple list) : t =
  let keep = List.filter (fun t -> not (List.mem t tuples)) (relation a name) in
  {
    a with
    relations =
      List.map
        (fun (n, ts) -> if n = name then (n, keep) else (n, ts))
        a.relations;
  }

(** [extend a syms rels] adds fresh symbols with the given extensions.
    Only the new tuples are validated and sorted; [a]'s own relations are
    reused untouched, so the cost is O(|universe| + |new tuples|) — the
    point of this constructor over {!make}, which re-validates the whole
    database. *)
let extend (a : t) (syms : Signature.symbol list)
    (rels : (string * tuple list) list) : t =
  let fresh = Signature.make syms in
  List.iter
    (fun (s : Signature.symbol) ->
      if Signature.mem a.signature s.name then
        invalid_arg ("Structure.extend: symbol already present: " ^ s.name))
    fresh;
  List.iter
    (fun (name, _) ->
      if not (Signature.mem fresh name) then
        invalid_arg ("Structure.extend: extension for undeclared symbol: " ^ name))
    rels;
  let uset = Intset.of_list a.universe in
  let new_rels =
    List.map
      (fun (s : Signature.symbol) ->
        let ts = Option.value ~default:[] (List.assoc_opt s.name rels) in
        List.iter
          (fun tup ->
            if List.length tup <> s.arity then
              invalid_arg
                (Printf.sprintf "Structure.extend: arity mismatch in %s" s.name);
            List.iter
              (fun v ->
                if not (Intset.mem v uset) then
                  invalid_arg
                    (Printf.sprintf
                       "Structure.extend: element %d not in universe (%s)" v
                       s.name))
              tup)
          ts;
        (s.name, normalize_tuples ts))
      fresh
  in
  {
    signature = Signature.union a.signature fresh;
    universe = a.universe;
    relations =
      List.merge
        (fun (n1, _) (n2, _) -> compare n1 n2)
        a.relations new_rels;
  }

(** [union a b] is the structure union A ∪ B of Section 2.2 (universes and
    relations united; signatures must agree on shared symbols). *)
let union (a : t) (b : t) : t =
  let signature = Signature.union a.signature b.signature in
  let names =
    Listx.sort_uniq compare (List.map fst a.relations @ List.map fst b.relations)
  in
  let rels =
    List.map
      (fun name ->
        let ta = try relation a name with Invalid_argument _ -> [] in
        let tb = try relation b name with Invalid_argument _ -> [] in
        (name, ta @ tb))
      names
  in
  make signature (a.universe @ b.universe) rels

(** [union_all structures] folds {!union} over a non-empty list. *)
let union_all (structures : t list) : t =
  match structures with
  | [] -> invalid_arg "Structure.union_all: empty list"
  | s :: rest -> List.fold_left union s rest

(** [induced a elems] is the substructure induced by the element list:
    universe restricted, each relation intersected with tuples over the
    restricted universe. *)
let induced (a : t) (elems : int list) : t =
  let keep = Intset.of_list elems in
  make a.signature
    (List.filter (fun v -> Intset.mem v keep) a.universe)
    (List.map
       (fun (name, ts) ->
         (name, List.filter (List.for_all (fun v -> Intset.mem v keep)) ts))
       a.relations)

(** [is_substructure a b] checks that A is a substructure of B:
    U(A) ⊆ U(B) and R^A ⊆ R^B for every symbol. *)
let is_substructure (a : t) (b : t) : bool =
  Signature.equal a.signature b.signature
  && Listx.is_subset_sorted a.universe b.universe
  && List.for_all
       (fun (name, ts) ->
         let tb = relation b name in
         List.for_all (fun t -> List.mem t tb) ts)
       a.relations

(** [rename a f] applies an injective element renaming [f] to the universe
    and all tuples.
    @raise Invalid_argument if [f] is not injective on the universe. *)
let rename (a : t) (f : int -> int) : t =
  let new_universe = List.map f a.universe in
  if List.length (Listx.sort_uniq_ints new_universe) <> List.length new_universe
  then invalid_arg "Structure.rename: not injective";
  make a.signature new_universe
    (List.map (fun (name, ts) -> (name, List.map (List.map f) ts)) a.relations)

(** [delete_elements a elems] removes the listed elements from the universe
    along with every tuple mentioning them. *)
let delete_elements (a : t) (elems : int list) : t =
  let drop = Intset.of_list elems in
  induced a (List.filter (fun v -> not (Intset.mem v drop)) a.universe)

(** [isolated_elements a] lists universe elements that occur in no tuple
    ("isolated variables" in Section 2.2 of the paper). *)
let isolated_elements (a : t) : int list =
  let occurring =
    List.fold_left
      (fun acc (_, ts) ->
        List.fold_left
          (fun acc t -> List.fold_left (fun acc v -> Intset.add v acc) acc t)
          acc ts)
      Intset.empty a.relations
  in
  List.filter (fun v -> not (Intset.mem v occurring)) a.universe

(* ------------------------------------------------------------------ *)
(* Gaifman graph                                                      *)
(* ------------------------------------------------------------------ *)

(** [gaifman a] is the Gaifman graph of [a] over densely re-indexed
    vertices, together with the dense-index → element mapping. *)
let gaifman (a : t) : Graph.t * int array =
  let old_of_new = Array.of_list a.universe in
  let new_of_old = Hashtbl.create (Array.length old_of_new) in
  Array.iteri (fun i v -> Hashtbl.add new_of_old v i) old_of_new;
  let g = Graph.make (Array.length old_of_new) in
  List.iter
    (fun (_, ts) ->
      List.iter
        (fun tup ->
          let idx = List.map (Hashtbl.find new_of_old) tup in
          List.iter
            (fun (x, y) -> if x <> y then Graph.add_edge g x y)
            (Combinat.pairs idx))
        ts)
    a.relations;
  (g, old_of_new)

(** [treewidth a] is the treewidth of the Gaifman graph of [a] (Section 2.2:
    "the treewidth of a structure is the treewidth of its Gaifman graph"). *)
let treewidth ?(budget : Budget.t option) ?(pool : Pool.t option) (a : t) :
    int =
  let g, _ = gaifman a in
  Treewidth.treewidth ?budget ?pool g

(* ------------------------------------------------------------------ *)
(* Tensor product (Theorem 28)                                        *)
(* ------------------------------------------------------------------ *)

(** [tensor a b] is the tensor product A ⊗ B: signature the common part,
    universe the cartesian product U(A) × U(B), and a tuple of pairs in a
    relation iff both projections are tuples of the respective factors.
    Returns the product together with the pair encoding
    [encode : elemA -> elemB -> elemAB]. *)
let tensor (a : t) (b : t) : t * (int -> int -> int) =
  let sg = Signature.inter a.signature b.signature in
  let ua = Array.of_list a.universe and ub = Array.of_list b.universe in
  let ia = Hashtbl.create (Array.length ua) and ib = Hashtbl.create (Array.length ub) in
  Array.iteri (fun i v -> Hashtbl.add ia v i) ua;
  Array.iteri (fun i v -> Hashtbl.add ib v i) ub;
  let q = Array.length ub in
  let encode x y = (Hashtbl.find ia x * q) + Hashtbl.find ib y in
  let universe =
    List.concat_map (fun x -> List.map (fun y -> encode x y) b.universe) a.universe
  in
  let rels =
    List.map
      (fun (s : Signature.symbol) ->
        let ta = relation a s.name and tb = relation b s.name in
        let prods =
          List.concat_map
            (fun tup_a -> List.map (fun tup_b -> List.map2 encode tup_a tup_b) tb)
            ta
        in
        (s.name, prods))
      sg
  in
  (make sg universe rels, encode)

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                    *)
(* ------------------------------------------------------------------ *)

let pp_tuple (fmt : Format.formatter) (t : tuple) : unit =
  Format.fprintf fmt "(%s)" (String.concat "," (List.map string_of_int t))

let pp (fmt : Format.formatter) (a : t) : unit =
  Format.fprintf fmt "@[<v>universe = {%s}@,"
    (String.concat "," (List.map string_of_int a.universe));
  List.iter
    (fun (name, ts) ->
      Format.fprintf fmt "%s = {%s}@," name
        (String.concat "; "
           (List.map
              (fun t ->
                "(" ^ String.concat "," (List.map string_of_int t) ^ ")")
              ts)))
    a.relations;
  Format.fprintf fmt "@]"
