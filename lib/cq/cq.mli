(** Conjunctive queries as pairs [(A, X)] of a relational structure and a
    free-variable set (Section 2.2, following [28]): the central query
    object of the paper, with its structural measures (acyclicity,
    contracts, #cores) and the q-hierarchicality test of Section 1.2. *)

type t

(** [make structure free] validates [free ⊆ U(structure)] (the free set is
    kept sorted). *)
val make : Structure.t -> int list -> t

(** [of_structure a] is the quantifier-free query (all variables free). *)
val of_structure : Structure.t -> t

val structure : t -> Structure.t
val free : t -> int list

(** [quantified q] is [U(A) \ X]. *)
val quantified : t -> int list

val is_quantifier_free : t -> bool

(** [size q] is [|(A, X)| = |A| + |X|]. *)
val size : t -> int

val arity : t -> int
val equal : t -> t -> bool

(** [isomorphic q1 q2] is Definition 15 isomorphism (the witness maps
    [X] onto [X'] setwise). *)
val isomorphic : t -> t -> bool

(** [is_self_join_free q]: every relation of [A] has at most one tuple. *)
val is_self_join_free : t -> bool

(** [is_acyclic q] is alpha-acyclicity of the atom hypergraph. *)
val is_acyclic : t -> bool

val isolated_variables : t -> int list

(** [drop_isolated_quantified q] removes isolated quantified variables
    (answer-preserving; the Lemma 34 normalisation). *)
val drop_isolated_quantified : t -> t

(** [treewidth ?budget q] is the treewidth of the Gaifman graph of [A].
    @raise Budget.Exhausted when the budget runs out mid-search. *)
val treewidth : ?budget:Budget.t -> ?pool:Pool.t -> t -> int

(** [is_free_connex q] decides free-connexity (footnote 2 of the paper):
    acyclic, and still acyclic after adding the free set as a hyperedge. *)
val is_free_connex : t -> bool

(** [contract q] is the contract of Definition 20, over densely re-indexed
    free variables (with the index → variable mapping). *)
val contract : t -> Graph.t * int array

val contract_treewidth : t -> int

(** [degree_of_freedom q y] is the number of free variables adjacent to the
    quantified variable [y] (proof of Lemma 35). *)
val degree_of_freedom : t -> int -> int

(** [is_sharp_minimal q] is #minimality via Observation 17 (3): every
    endomorphism of [A] fixing [X] pointwise is surjective. *)
val is_sharp_minimal : t -> bool

(** [sharp_core q] is the #core (Definition 19), unique up to isomorphism
    by Lemma 18. *)
val sharp_core : t -> t

(** [sharp_equivalent q1 q2] is #equivalence (Definition 16), decided
    through #cores and isomorphism. *)
val sharp_equivalent : t -> t -> bool

(** [is_semantically_acyclic q] is acyclicity of the #core (footnote 3 of
    the paper). *)
val is_semantically_acyclic : t -> bool

(** [is_hierarchical q]: any two variables have comparable or disjoint atom
    sets. *)
val is_hierarchical : t -> bool

(** [is_q_hierarchical q] is the Berkholz–Keppeler–Schweikardt criterion
    for constant-time dynamic counting (Section 1.2); the paper's example
    [E(a,b) ∧ E(b,c) ∧ E(c,d)] is acyclic but fails it. *)
val is_q_hierarchical : t -> bool

val pp : Format.formatter -> t -> unit
