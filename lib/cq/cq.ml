(** Conjunctive queries as pairs [(A, X)] of a relational structure and a
    set of free variables (Section 2.2 of the paper, following [28]).

    The universe of [A] is the variable set; [X ⊆ U(A)] are the free
    variables and [U(A) \ X] the existentially quantified ones.  Answers in
    a database [D] are the restrictions to [X] of homomorphisms [A → D]. *)

module Intset = Intset

type t = { structure : Structure.t; free : int list (* sorted *) }

(** [make structure free] validates [free ⊆ U(structure)]. *)
let make (structure : Structure.t) (free : int list) : t =
  let free = Listx.sort_uniq_ints free in
  if not (Listx.is_subset_sorted free (Structure.universe structure)) then
    invalid_arg "Cq.make: free variables not in universe";
  { structure; free }

(** [of_structure a] is the quantifier-free query with all variables free.*)
let of_structure (a : Structure.t) : t =
  { structure = a; free = Structure.universe a }

let structure (q : t) : Structure.t = q.structure
let free (q : t) : int list = q.free

(** [quantified q] is the list of existentially quantified variables. *)
let quantified (q : t) : int list =
  Listx.diff_sorted (Structure.universe q.structure) q.free

let is_quantifier_free (q : t) : bool = quantified q = []

(** [size q] is |(A, X)| = |A| + |X| (Section 2.2). *)
let size (q : t) : int = Structure.size q.structure + List.length q.free

(** [arity q] is the maximum arity of the signature. *)
let arity (q : t) : int = Signature.arity (Structure.signature q.structure)

(** [equal q1 q2] is syntactic equality. *)
let equal (q1 : t) (q2 : t) : bool =
  Structure.equal q1.structure q2.structure && q1.free = q2.free

(** [isomorphic q1 q2] decides isomorphism of conjunctive queries
    (Definition 15: a structure isomorphism [b] with [b(X) = X']). *)
let isomorphic (q1 : t) (q2 : t) : bool =
  Struct_iso.isomorphic ~protected_:[ (q1.free, q2.free) ] q1.structure
    q2.structure

(** [is_self_join_free q] checks that every relation of [A] contains at most
    one tuple (the structure-level reading of self-join-freeness used in
    Section 2.2). *)
let is_self_join_free (q : t) : bool =
  List.for_all
    (fun (_, ts) -> List.length ts <= 1)
    (Structure.relations q.structure)

(** [is_acyclic q] decides alpha-acyclicity of the atom hypergraph; for
    binary signatures this coincides with the Gaifman graph being a
    forest. *)
let is_acyclic (q : t) : bool = Jointree_count.is_acyclic_structure q.structure

(** [isolated_variables q] lists variables occurring in no atom. *)
let isolated_variables (q : t) : int list =
  Structure.isolated_elements q.structure

(** [drop_isolated_quantified q] removes isolated existentially quantified
    variables — they do not affect the answer set (Lemma 34 uses this
    normalisation). *)
let drop_isolated_quantified (q : t) : t =
  let iso =
    List.filter
      (fun v -> not (List.mem v q.free))
      (isolated_variables q)
  in
  { structure = Structure.delete_elements q.structure iso; free = q.free }

(** [treewidth ?budget ?pool q] is the treewidth of the Gaifman graph of
    [A]. *)
let treewidth ?(budget : Budget.t option) ?(pool : Pool.t option) (q : t) :
    int =
  Structure.treewidth ?budget ?pool q.structure

(** [is_free_connex q] decides free-connexity: the query is acyclic and
    remains acyclic after adding the free-variable set as an extra
    hyperedge (Bagan–Durand–Grandjean).  Footnote 2 of the paper: in the
    quantifier-free case free-connex is equivalent to acyclic, and
    free-connexity is the right criterion for linear-time counting of
    self-join-free queries with quantifiers. *)
let is_free_connex (q : t) : bool =
  is_acyclic q
  &&
  let h = Jointree_count.atom_hypergraph q.structure in
  Hypergraph.is_acyclic
    (Hypergraph.make h.Hypergraph.vertices (q.free :: h.Hypergraph.edges))

(* ------------------------------------------------------------------ *)
(* Contract (Definition 20)                                           *)
(* ------------------------------------------------------------------ *)

(** [contract q] computes the contract of [(A, X)]: start from the Gaifman
    graph induced on [X] and add an edge between [u, v ∈ X] whenever some
    connected component of the quantified part [G[Y]] is adjacent to both.
    The result is a graph over the free variables (densely re-indexed; the
    mapping is returned). *)
let contract (q : t) : Graph.t * int array =
  let g, old_of_new = Structure.gaifman q.structure in
  let new_of_old = Hashtbl.create (Array.length old_of_new) in
  Array.iteri (fun i v -> Hashtbl.add new_of_old v i) old_of_new;
  let x_dense = List.map (Hashtbl.find new_of_old) q.free in
  let y_dense = List.map (Hashtbl.find new_of_old) (quantified q) in
  (* contract graph over X, densely re-indexed *)
  let x_arr = Array.of_list q.free in
  let xpos = Hashtbl.create (Array.length x_arr) in
  List.iteri (fun i v -> Hashtbl.add xpos v i) (List.map (Hashtbl.find new_of_old) q.free);
  let c = Graph.make (Array.length x_arr) in
  (* edges inside X *)
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          if u < v && Graph.has_edge g u v then
            Graph.add_edge c (Hashtbl.find xpos u) (Hashtbl.find xpos v))
        x_dense)
    x_dense;
  (* components of G[Y] *)
  let gy, y_of_new = Graph.induced g y_dense in
  let comps = Graph.components gy in
  List.iter
    (fun comp ->
      let comp_orig = List.map (fun i -> y_of_new.(i)) comp in
      let attached =
        List.filter
          (fun x ->
            List.exists (fun y -> Graph.has_edge g x y) comp_orig)
          x_dense
      in
      List.iter
        (fun (u, v) ->
          Graph.add_edge c (Hashtbl.find xpos u) (Hashtbl.find xpos v))
        (Combinat.pairs attached))
    comps;
  (c, x_arr)

(** [contract_treewidth q] is the treewidth of the contract. *)
let contract_treewidth (q : t) : int =
  let c, _ = contract q in
  Treewidth.treewidth c

(** [degree_of_freedom q y] is the number of free variables adjacent to the
    quantified variable [y] in the Gaifman graph (used in the proof of
    Lemma 35). *)
let degree_of_freedom (q : t) (y : int) : int =
  let g, old_of_new = Structure.gaifman q.structure in
  let new_of_old = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.add new_of_old v i) old_of_new;
  match Hashtbl.find_opt new_of_old y with
  | None -> 0
  | Some yi ->
      List.length
        (List.filter
           (fun x ->
             match Hashtbl.find_opt new_of_old x with
             | None -> false
             | Some xi -> Graph.has_edge g yi xi)
           q.free)

(* ------------------------------------------------------------------ *)
(* #Minimality and #cores (Definitions 16/19, Observation 17)         *)
(* ------------------------------------------------------------------ *)

(** [is_sharp_minimal q] decides #minimality via Observation 17 (3): every
    homomorphism from [A] to itself that is the identity on [X] must be
    surjective. *)
let is_sharp_minimal (q : t) : bool =
  Option.is_none
    (Hom.find_non_surjective_endo q.structure ~fixed_pointwise:q.free)

(** [sharp_core q] computes the #core (Definition 19): repeatedly retract
    along a non-surjective endomorphism fixing [X], restricting to the
    induced substructure on the image, until #minimal.  By Lemma 18 the
    result is unique up to isomorphism. *)
let rec sharp_core (q : t) : t =
  match Hom.find_non_surjective_endo q.structure ~fixed_pointwise:q.free with
  | None -> q
  | Some h ->
      let image = List.sort_uniq compare (List.map snd h) in
      sharp_core { structure = Structure.induced q.structure image; free = q.free }

(** [sharp_equivalent q1 q2] decides #equivalence (Definition 16) by
    computing both #cores and testing isomorphism (sound and complete by
    Lemma 18). *)
let sharp_equivalent (q1 : t) (q2 : t) : bool =
  isomorphic (sharp_core q1) (sharp_core q2)

(** [is_semantically_acyclic q] decides semantic acyclicity in the counting
    sense of footnote 3: the #core of the query is acyclic.  (For Boolean
    queries this coincides with classical semantic acyclicity via the
    homomorphic core.) *)
let is_semantically_acyclic (q : t) : bool = is_acyclic (sharp_core q)

(* ------------------------------------------------------------------ *)
(* q-hierarchicality (Related work, Berkholz–Keppeler–Schweikardt)    *)
(* ------------------------------------------------------------------ *)

(** [atoms_of_var q] maps each variable to the set of atom indices it
    occurs in; atoms are indexed across all relations in order. *)
let atoms_of_var (q : t) : (int, Intset.t) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  let idx = ref 0 in
  List.iter
    (fun (_, ts) ->
      List.iter
        (fun tup ->
          List.iter
            (fun v ->
              let s = Option.value ~default:Intset.empty (Hashtbl.find_opt tbl v) in
              Hashtbl.replace tbl v (Intset.add !idx s))
            tup;
          incr idx)
        ts)
    (Structure.relations q.structure);
  tbl

(** [is_hierarchical q] checks that for any two variables the sets of atoms
    containing them are comparable or disjoint. *)
let is_hierarchical (q : t) : bool =
  let tbl = atoms_of_var q in
  let vars = List.filter (Hashtbl.mem tbl) (Structure.universe q.structure) in
  List.for_all
    (fun (x, y) ->
      let ax = Hashtbl.find tbl x and ay = Hashtbl.find tbl y in
      Intset.subset ax ay || Intset.subset ay ax
      || Intset.is_empty (Intset.inter ax ay))
    (Combinat.pairs vars)

(** [is_q_hierarchical q] checks q-hierarchicality ([11, Theorem 1.3]):
    hierarchical, and no free variable [x] with [atoms(x) ⊊ atoms(y)] for a
    quantified variable [y].  The paper's example
    [E(a,b) ∧ E(b,c) ∧ E(c,d)] (all free) is acyclic but not
    q-hierarchical. *)
let is_q_hierarchical (q : t) : bool =
  is_hierarchical q
  &&
  let tbl = atoms_of_var q in
  let quant = quantified q in
  List.for_all
    (fun x ->
      match Hashtbl.find_opt tbl x with
      | None -> true
      | Some ax ->
          List.for_all
            (fun y ->
              match Hashtbl.find_opt tbl y with
              | None -> true
              | Some ay ->
                  not (Intset.subset ax ay && not (Intset.equal ax ay)))
            quant)
    q.free

let pp (fmt : Format.formatter) (q : t) : unit =
  Format.fprintf fmt "@[<v>free = {%s}@,%a@]"
    (String.concat "," (List.map string_of_int q.free))
    Structure.pp q.structure
